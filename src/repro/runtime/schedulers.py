"""Baseline scheduling policies and the central-queue simulator.

Baselines the paper cites for chunk-size generation [10, 17, 20]:

* **static** — block decomposition, one contiguous chunk per processor,
  no runtime scheduling events (the paper's "static" curve in Figure 6);
* **self-scheduling (SS)** — one task per scheduling event;
* **guided self-scheduling (GSS)** — ``ceil(R/p)`` per event
  (Polychronopoulos & Kuck);
* **factoring** — batches of ``p`` chunks, each ``ceil(R/(2p))``
  (Hummel, Schonberg & Flynn);
* **TAPER** — :mod:`repro.runtime.taper`.

:func:`run_central` simulates a parallel operation executed from a central
task queue under any of these policies on the simulated machine.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence

from ..obs.events import (
    CHUNK_ACQUIRE,
    CHUNK_COMPLETE,
    TASK_DISPATCH,
    Tracer,
)
from .cost_model import CostFunction
from .machine import MachineConfig, RunResult
from .taper import TaperPolicy


class ChunkPolicy(Protocol):
    """Anything that can pick the next chunk size."""

    name: str

    def next_chunk(
        self,
        remaining: int,
        p: int,
        cost_function: CostFunction,
        next_iteration: int = 0,
    ) -> int: ...

    def predict_chunks(self, n: int, p: int, cv: float = 0.5) -> float: ...


@dataclass
class SelfScheduling:
    """One task at a time — minimal imbalance, maximal overhead."""

    name: str = "self"

    def next_chunk(self, remaining, p, cost_function, next_iteration=0) -> int:
        return 1 if remaining > 0 else 0

    def predict_chunks(self, n: int, p: int, cv: float = 0.5) -> float:
        return float(n)


@dataclass
class GuidedSelfScheduling:
    """GSS: ceil(R/p) per event (Polychronopoulos & Kuck, 1987)."""

    name: str = "gss"
    min_chunk: int = 1

    def next_chunk(self, remaining, p, cost_function, next_iteration=0) -> int:
        if remaining <= 0:
            return 0
        return max(self.min_chunk, math.ceil(remaining / p))

    def predict_chunks(self, n: int, p: int, cv: float = 0.5) -> float:
        if n <= 0:
            return 0.0
        # R shrinks by (1 - 1/p) each event.
        return max(1.0, p * math.log(max(n / p, 1.0)) + p)


@dataclass
class Factoring:
    """Factoring: rounds of p chunks, each ceil(R/(2p)) (Hummel et al.)."""

    name: str = "factoring"
    min_chunk: int = 1
    _round_left: int = field(default=0, repr=False)
    _round_size: int = field(default=0, repr=False)

    def next_chunk(self, remaining, p, cost_function, next_iteration=0) -> int:
        if remaining <= 0:
            return 0
        if self._round_left <= 0:
            self._round_size = max(self.min_chunk, math.ceil(remaining / (2 * p)))
            self._round_left = p
        self._round_left -= 1
        return min(self._round_size, remaining)

    def predict_chunks(self, n: int, p: int, cv: float = 0.5) -> float:
        if n <= 0:
            return 0.0
        rounds = max(1.0, math.log2(max(n / p, 2.0)))
        return min(float(n), p * rounds)


@dataclass
class StaticChunking:
    """Block decomposition: each processor receives exactly one chunk."""

    name: str = "static"
    _dealt: int = field(default=0, repr=False)
    _block: int = field(default=0, repr=False)

    def next_chunk(self, remaining, p, cost_function, next_iteration=0) -> int:
        if remaining <= 0:
            return 0
        if self._block == 0:
            # First call: fix the block size for the whole operation.
            self._block = math.ceil((remaining) / p)
        return min(self._block, remaining)

    def predict_chunks(self, n: int, p: int, cv: float = 0.5) -> float:
        return float(min(n, p))


def make_policy(name: str, min_chunk: int = 1) -> ChunkPolicy:
    """Factory by policy name (fresh instance — policies carry state)."""
    if name == "taper":
        return TaperPolicy(min_chunk=min_chunk)
    if name == "taper-nocost":
        return TaperPolicy(min_chunk=min_chunk, use_cost_function=False, name="taper-nocost")
    if name == "self":
        return SelfScheduling()
    if name == "gss":
        return GuidedSelfScheduling(min_chunk=min_chunk)
    if name == "factoring":
        return Factoring(min_chunk=min_chunk)
    if name == "static":
        return StaticChunking()
    raise ValueError(f"unknown scheduling policy {name!r}")


def run_central(
    costs: Sequence[float],
    p: int,
    policy: ChunkPolicy,
    config: Optional[MachineConfig] = None,
    prior_sample_stride: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    op_label: str = "op",
    trace_proc_offset: int = 0,
) -> RunResult:
    """Simulate one parallel operation from a central task queue.

    Each *scheduling event* (a processor acquiring a chunk) costs
    ``sched_overhead``; each task adds ``task_overhead``.  The makespan is
    the time the last processor finishes.

    ``prior_sample_stride`` models the paper's pre-run sampling ("the
    runtime system does additional sampling of task costs to build a cost
    function"): every stride-th task cost is observed before scheduling
    begins, so the cost function knows the iteration-axis trend up front.
    """
    config = config or MachineConfig(processors=p)
    n = len(costs)
    if n == 0:
        return RunResult(makespan=0.0, total_work=0.0, processors=p, chunks=0)
    cost_function = CostFunction(bucket_size=max(1, n // 16))
    if prior_sample_stride is not None and prior_sample_stride > 0:
        for index in range(0, n, prior_sample_stride):
            cost_function.observe(index, costs[index])
    trace = tracer is not None
    if trace and hasattr(policy, "tracer"):
        policy.tracer = tracer
    heap: List[tuple] = [(0.0, index) for index in range(p)]
    heapq.heapify(heap)
    position = 0
    chunks = 0
    finish = [0.0] * p
    while position < n:
        clock, proc = heapq.heappop(heap)
        remaining = n - position
        if trace:
            tracer.now = clock
        size = policy.next_chunk(remaining, p, cost_function, position)
        if size <= 0:
            size = 1
        size = min(size, remaining)
        work = config.sched_overhead + size * config.task_overhead
        if trace:
            tracer.emit(
                CHUNK_ACQUIRE,
                clock,
                dur=config.sched_overhead,
                proc=proc + trace_proc_offset,
                op=op_label,
                size=size,
                remaining=remaining,
            )
            task_clock = clock + config.sched_overhead
        for offset in range(size):
            cost = costs[position + offset]
            work += cost
            cost_function.observe(position + offset, cost)
            if trace:
                task_clock += config.task_overhead
                tracer.emit(
                    TASK_DISPATCH,
                    task_clock,
                    dur=cost,
                    proc=proc + trace_proc_offset,
                    op=op_label,
                    task=position + offset,
                    overhead=config.task_overhead,
                )
                task_clock += cost
        position += size
        chunks += 1
        clock += work
        if trace:
            tracer.emit(
                CHUNK_COMPLETE,
                clock - work + config.sched_overhead,
                dur=work - config.sched_overhead,
                proc=proc + trace_proc_offset,
                op=op_label,
                tasks=size,
            )
        finish[proc] = clock
        heapq.heappush(heap, (clock, proc))
    return RunResult(
        makespan=max(finish),
        total_work=float(sum(costs)),
        processors=p,
        chunks=chunks,
    )
