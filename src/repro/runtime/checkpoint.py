"""Durable runs: the chunk journal and run manifest (checkpoint layer).

The mp backend's unit of recovery has always been the *chunk* — an
idempotent, re-executable slice of one operation's index space (the
same property Palkar & Zaharia's split annotations exploit: a split
that can be re-run is a split that can be restarted).  This module
makes that property durable:

* :class:`RunManifest` — written once at run start: a fingerprint of
  every scheduling-relevant config field plus the operation shapes, so
  a resume against a *different* run is refused instead of silently
  producing garbage;
* :class:`ChunkJournal` — an append-only, CRC-checked record stream,
  one record per completed chunk (task indices, per-task cost samples
  and reduction partials, attempt counts).  Records are flushed on
  every append and fsynced every ``checkpoint_interval`` records, so a
  coordinator crash loses at most the chunks completed since the last
  sync — and a torn tail write is *detected* (bad CRC / truncated
  JSON) and dropped, never replayed as data;
* :func:`read_journal` — the replay path: skips corrupt records,
  de-duplicates task indices (a speculative duplicate journaled twice
  counts once), and hands the coordinator everything it needs to
  re-seed TAPER cost statistics and re-ration only the remaining work.

The journal lives next to the manifest in ``RunConfig.checkpoint_dir``:

    checkpoint_dir/
        manifest.json    # RunManifest (fingerprint, config, op shapes)
        journal.jsonl    # one "<crc8> <json>" line per completed chunk
        run.json         # CLI-level target (written by repro.api)

Self-contained: imports nothing from the rest of the runtime (like
``faults.py``) so ``config`` and ``backends`` can both use it freely.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Journal/manifest format version; bump on incompatible layout changes.
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
TARGET_NAME = "run.json"

#: RunConfig fields that determine the schedule (and therefore whether a
#: journal can be replayed against a config).  Operational knobs —
#: timeouts, heartbeats, fault plans, tracers, the checkpoint fields
#: themselves — are deliberately excluded: retrying with a different
#: heartbeat or without fault injection is exactly what resume is *for*.
FINGERPRINT_FIELDS = (
    "backend",
    "processors",
    "policy",
    "allocator",
    "work_conserving",
    "min_chunk",
    "sample_tasks",
    "cost_source",
    "time_scale",
    "batching",
    "seed",
)


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, unreadable, or malformed."""


class CheckpointMismatchError(CheckpointError):
    """The journal was written by a run with a different configuration.

    Replaying chunk results against a different processor count, chunk
    policy, or operation set would silently corrupt totals; the resume
    path refuses instead, naming the differing fields.
    """


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def config_fingerprint_fields(cfg: Any) -> Dict[str, Any]:
    """The scheduling-relevant subset of a RunConfig, as plain JSON."""
    return {name: getattr(cfg, name) for name in FINGERPRINT_FIELDS}


def op_shape(op: Any) -> Dict[str, Any]:
    """One operation's identity for fingerprinting.

    Payload *contents* are not hashed (payloads need not even be
    hashable); the name, size, declared costs, and byte weight pin the
    schedule.  Regenerate ops deterministically (same seed) to resume.
    """
    if getattr(op, "is_stream", False):
        # A stream's size and costs grow as pages are admitted, so they
        # cannot pin its identity; the shape is stable by construction
        # and per-page identity is checked against journaled PageMarks
        # at re-admission instead.
        return {
            "name": op.name,
            "size": "stream",
            "bytes_per_task": getattr(op, "bytes_per_task", 0.0),
            "costs": None,
        }
    costs = getattr(op, "costs", None)
    costs_digest = None
    if costs is not None:
        costs_digest = hashlib.sha256(
            json.dumps([repr(c) for c in costs]).encode()
        ).hexdigest()[:16]
    return {
        "name": op.name,
        "size": op.size,
        "bytes_per_task": getattr(op, "bytes_per_task", 0.0),
        "costs": costs_digest,
    }


def run_fingerprint(cfg: Any, ops: Sequence[Any]) -> str:
    """One stable hash over config + operation shapes."""
    payload = {
        "version": FORMAT_VERSION,
        "config": config_fingerprint_fields(cfg),
        "ops": [op_shape(op) for op in ops],
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


@dataclass
class RunManifest:
    """What a checkpoint directory says about the run it belongs to."""

    fingerprint: str
    config: Dict[str, Any]
    ops: List[Dict[str, Any]]
    version: int = FORMAT_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "config": self.config,
            "ops": self.ops,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "RunManifest":
        return cls(
            fingerprint=raw["fingerprint"],
            config=dict(raw.get("config", {})),
            ops=list(raw.get("ops", [])),
            version=int(raw.get("version", 0)),
        )

    @classmethod
    def build(cls, cfg: Any, ops: Sequence[Any]) -> "RunManifest":
        return cls(
            fingerprint=run_fingerprint(cfg, ops),
            config=config_fingerprint_fields(cfg),
            ops=[op_shape(op) for op in ops],
        )

    def describe_mismatch(self, other: "RunManifest") -> str:
        """Human-readable diff for :class:`CheckpointMismatchError`."""
        parts: List[str] = []
        if self.version != other.version:
            parts.append(
                f"format version {self.version} vs {other.version}"
            )
        for name in sorted(set(self.config) | set(other.config)):
            mine = self.config.get(name)
            theirs = other.config.get(name)
            if mine != theirs:
                parts.append(f"{name}: {mine!r} vs {theirs!r}")
        if [o.get("name") for o in self.ops] != [
            o.get("name") for o in other.ops
        ]:
            parts.append(
                "operations: "
                f"{[o.get('name') for o in self.ops]} vs "
                f"{[o.get('name') for o in other.ops]}"
            )
        else:
            for mine, theirs in zip(self.ops, other.ops):
                if mine != theirs:
                    parts.append(
                        f"op {mine.get('name')!r}: {mine} vs {theirs}"
                    )
        return "; ".join(parts) or "fingerprints differ"


def manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_NAME)


def journal_path(directory: str) -> str:
    return os.path.join(directory, JOURNAL_NAME)


def write_manifest(directory: str, manifest: RunManifest) -> str:
    os.makedirs(directory, exist_ok=True)
    path = manifest_path(directory)
    with open(path, "w") as handle:
        json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    return path


def load_manifest(directory: str) -> RunManifest:
    path = manifest_path(directory)
    if not os.path.exists(path):
        raise CheckpointError(
            f"no checkpoint manifest at {path}; was this run started "
            "with RunConfig.checkpoint_dir set?"
        )
    try:
        with open(path) as handle:
            raw = json.load(handle)
    except (OSError, ValueError) as error:
        raise CheckpointError(
            f"unreadable checkpoint manifest at {path}: {error}"
        ) from error
    return RunManifest.from_dict(raw)


# ---------------------------------------------------------------------------
# CLI target sidecar (written by repro.api so `--resume DIR` needs no
# target argument)
# ---------------------------------------------------------------------------


def save_run_target(
    directory: str, target: str, overrides: Optional[Dict[str, Any]] = None
) -> str:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, TARGET_NAME)
    with open(path, "w") as handle:
        json.dump(
            {"target": target, "overrides": dict(overrides or {})},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    return path


def load_run_target(directory: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(directory, TARGET_NAME)
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


# ---------------------------------------------------------------------------
# Chunk journal
# ---------------------------------------------------------------------------


@dataclass
class ChunkRecord:
    """One completed chunk, as journaled.

    ``tasks`` holds ``(index, duration_seconds, value, attempt)`` per
    task — everything needed to restore reduction partials exactly and
    to re-seed the TAPER mean/variance sample (``attempt > 0`` tasks
    are excluded from statistics on replay, mirroring the live run's
    first-attempt-only sampling).
    """

    op_index: int
    label: str
    worker: int
    time: float
    tasks: List[Tuple[int, float, float, int]]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op_index,
            "label": self.label,
            "worker": self.worker,
            "t": self.time,
            "tasks": [list(task) for task in self.tasks],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ChunkRecord":
        return cls(
            op_index=int(raw["op"]),
            label=str(raw.get("label", "")),
            worker=int(raw.get("worker", -1)),
            time=float(raw.get("t", 0.0)),
            tasks=[
                (int(t[0]), float(t[1]), float(t[2]), int(t[3]))
                for t in raw["tasks"]
            ],
        )

    @property
    def value_total(self) -> float:
        return sum(task[2] for task in self.tasks)


@dataclass
class PageMark:
    """One stream page's durable admission watermark.

    Appended (and fsynced) the moment a :class:`StreamOp` page is
    admitted, *before* any of its chunks dispatch.  On resume the marks
    say which pages the killed run had pulled from the source — the
    coordinator re-admits exactly those pages (verifying ``seq`` /
    ``base`` / ``tasks`` against what the regenerated source yields) and
    accepts journaled task results only inside marked page bounds, so a
    torn record can never smuggle results past the last durable page.
    """

    op_index: int
    seq: int
    base: int
    tasks: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "page": self.seq,
            "op": self.op_index,
            "base": self.base,
            "tasks": self.tasks,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "PageMark":
        return cls(
            op_index=int(raw["op"]),
            seq=int(raw["page"]),
            base=int(raw["base"]),
            tasks=int(raw["tasks"]),
        )


def _encode_body(payload: Dict[str, Any]) -> str:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode()) & 0xFFFFFFFF
    return f"{crc:08x} {body}"


def encode_record(record: ChunkRecord) -> str:
    """``<crc32-hex> <canonical-json>`` — one journal line."""
    return _encode_body(record.to_dict())


def encode_mark(mark: PageMark) -> str:
    """A :class:`PageMark` as one journal line (same framing)."""
    return _encode_body(mark.to_dict())


def decode_line(line: str):
    """Parse one journal line into a :class:`ChunkRecord` or
    :class:`PageMark`; ``None`` for corrupt/truncated lines."""
    line = line.rstrip("\n")
    if not line.strip():
        return None
    if len(line) < 10 or line[8] != " ":
        return None
    crc_text, body = line[:8], line[9:]
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if (zlib.crc32(body.encode()) & 0xFFFFFFFF) != expected:
        return None
    try:
        raw = json.loads(body)
        if "page" in raw:
            return PageMark.from_dict(raw)
        return ChunkRecord.from_dict(raw)
    except (ValueError, KeyError, TypeError, IndexError):
        return None


def decode_record(line: str) -> Optional[ChunkRecord]:
    """Parse one journal line; ``None`` for corrupt lines and marks."""
    decoded = decode_line(line)
    return decoded if isinstance(decoded, ChunkRecord) else None


class ChunkJournal:
    """Append-only journal writer with bounded-loss durability.

    Every :meth:`append` flushes to the OS (a coordinator *crash* loses
    nothing already appended); every ``sync_interval`` appends the file
    is fsynced (a *host* crash loses at most one interval of chunks).
    """

    def __init__(self, directory: str, sync_interval: int = 1):
        self.path = journal_path(directory)
        self.sync_interval = max(1, int(sync_interval))
        self._since_sync = 0
        self.records_written = 0
        self.bytes_written = 0
        os.makedirs(directory, exist_ok=True)
        self._handle = open(self.path, "a")

    def append(self, record: ChunkRecord) -> bool:
        """Write one record; returns True when this append fsynced."""
        line = encode_record(record) + "\n"
        self._handle.write(line)
        self._handle.flush()
        self.records_written += 1
        self.bytes_written += len(line)
        self._since_sync += 1
        synced = False
        if self._since_sync >= self.sync_interval:
            os.fsync(self._handle.fileno())
            self._since_sync = 0
            synced = True
        return synced

    def append_mark(self, mark: PageMark) -> None:
        """Write one page mark and fsync immediately.

        A mark is a durable *admission barrier*: results for its page
        may enter the journal only after the mark itself is on disk, so
        every append_mark pays the fsync regardless of the configured
        sync interval.  That cost is the journal-writer half of stream
        backpressure — a slow disk slows admission, by design.
        """
        line = encode_mark(mark) + "\n"
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records_written += 1
        self.bytes_written += len(line)
        self._since_sync = 0

    def sync(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_sync = 0

    def close(self) -> None:
        if not self._handle.closed:
            try:
                self.sync()
            except (OSError, ValueError):  # pragma: no cover - best effort
                pass
            self._handle.close()


@dataclass
class JournalReplay:
    """Everything a resumed coordinator learns from the journal."""

    records: List[ChunkRecord] = field(default_factory=list)
    #: Stream page marks, in admission order per op (first write wins).
    marks: List[PageMark] = field(default_factory=list)
    #: Corrupt/truncated lines skipped during the scan.
    dropped: int = 0
    #: Duplicate (op, task) completions ignored (speculation dedup).
    duplicates: int = 0

    @property
    def tasks_restored(self) -> int:
        return sum(len(record.tasks) for record in self.records)

    @property
    def chunks_restored(self) -> int:
        return len(self.records)


def read_journal(directory: str) -> JournalReplay:
    """Scan the journal, dropping (only) corrupt records.

    The journal is append-only, so corruption is almost always a torn
    tail record from a mid-write crash; the scan nevertheless checks
    every line's CRC so a flipped bit mid-file also costs exactly that
    record, not the run.  Task indices already seen for an operation
    are dropped as duplicates — a speculative duplicate completion that
    raced its primary into the journal replays once.
    """
    replay = JournalReplay()
    path = journal_path(directory)
    if not os.path.exists(path):
        return replay
    seen: Dict[int, set] = {}
    seen_marks: set = set()
    with open(path) as handle:
        for line in handle:
            if not line.strip():
                continue
            record = decode_line(line)
            if record is None:
                replay.dropped += 1
                continue
            if isinstance(record, PageMark):
                if (record.op_index, record.seq) not in seen_marks:
                    seen_marks.add((record.op_index, record.seq))
                    replay.marks.append(record)
                continue
            seen_op = seen.setdefault(record.op_index, set())
            fresh = []
            for task in record.tasks:
                if task[0] in seen_op:
                    replay.duplicates += 1
                    continue
                seen_op.add(task[0])
                fresh.append(task)
            if fresh:
                record.tasks = fresh
                replay.records.append(record)
    return replay


def init_checkpoint_dir(directory: str, manifest: RunManifest) -> None:
    """Start a fresh checkpoint: write the manifest, truncate the journal."""
    write_manifest(directory, manifest)
    with open(journal_path(directory), "w"):
        pass
