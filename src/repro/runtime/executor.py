"""Executing dataflow graphs on the simulated machine (Section 4).

Three layers, used by the examples and the benchmark harness:

* :func:`run_concurrent_ops` — a set of simultaneously-ready parallel
  operations: ration processors with the Eq. 1 balancer, execute each
  share under distributed TAPER, report the combined result.  This is the
  paper's core scenario ("A and B1 executing simultaneously").
* :func:`run_pipelined` — a pipelined loop (A_I / A_D / A_M stages per
  iteration): iteration i's independent stage overlaps iteration i-1's
  dependent work, with the processor split re-balanced each iteration.
* :class:`GraphExecutor` — event-driven execution of an arbitrary
  Delirium graph with preemptive re-allocation whenever the set of
  running operations changes (the paper reallocates when B1 begins while
  A is partially complete).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.events import OP_BEGIN, OP_END, PIPELINE_STAGE, Tracer
from .allocation import allocate_even, allocate_many, allocate_pair
from .distributed import run_distributed
from .estimates import FinishingTimeEstimator, OpProfile
from .machine import MachineConfig, RunResult
from .schedulers import make_policy
from .task import ParallelOp


def profile_of(op: ParallelOp, sample: int = 32) -> OpProfile:
    """The runtime's sampled view of an operation (first ``sample`` tasks,
    as the real system samples during startup).

    Thin wrapper over :func:`repro.runtime.sampling.profile_from_costs`,
    the shared sampling helper every backend uses.
    """
    from .sampling import profile_from_costs

    return profile_from_costs(
        op.costs,
        tasks=op.size,
        sample=sample,
        setup_bytes=op.bytes_per_task * op.size,
    )


@dataclass
class ConcurrentRunResult:
    """Outcome of running several operations side by side."""

    makespan: float
    per_op: List[RunResult]
    shares: List[int]

    @property
    def total_work(self) -> float:
        return sum(r.total_work for r in self.per_op)

    @property
    def efficiency(self) -> float:
        p = sum(self.shares)
        if p == 0 or self.makespan == 0:
            return 1.0
        return self.total_work / (p * self.makespan)


def run_concurrent_ops(
    ops: Sequence[ParallelOp],
    p: int,
    config: Optional[MachineConfig] = None,
    policy: str = "taper",
    allocator: str = "balance",
    work_conserving: bool = True,
    tracer: Optional[Tracer] = None,
) -> ConcurrentRunResult:
    """Run concurrent operations, sharing ``p`` processors.

    ``allocator`` chooses the *initial* processor split: ``"balance"``
    (the paper's Eq. 1 equaliser), ``"even"``, or ``"proportional"``.

    With ``work_conserving`` (the paper's behaviour) the allocation seeds
    the data decomposition and the distributed scheduler's chunk
    re-assignment then lets idle processors flow across operation
    boundaries — "the runtime system uses the extra parallelism from the
    more regular loop nest to smooth the load balance of the computation
    as a whole".  Without it each operation is pinned to its share (a
    strictly partitioned baseline for the ablation benches).
    """
    config = config or MachineConfig(processors=p)
    if not ops:
        return ConcurrentRunResult(makespan=0.0, per_op=[], shares=[])
    if len(ops) == 1:
        shares = [p]
    elif p < 2 * len(ops):
        shares = allocate_even(p, len(ops))
    elif allocator == "balance":
        estimators = [
            FinishingTimeEstimator(profile_of(op), config) for op in ops
        ]
        shares = allocate_many(
            p,
            [e.finish for e in estimators],
            tracer=tracer,
            labels=[op.name for op in ops],
        )
    elif allocator == "proportional":
        from .allocation import allocate_proportional

        shares = allocate_proportional(p, [op.total_work for op in ops])
    elif allocator == "even":
        shares = allocate_even(p, len(ops))
    else:
        raise ValueError(f"unknown allocator {allocator!r}")

    if work_conserving and len(ops) > 1:
        return _run_work_conserving(ops, p, shares, config, policy, tracer)

    results: List[RunResult] = []
    lane_offset = 0
    for op, share in zip(ops, shares):
        share = max(share, 1)
        result = run_distributed(
            op.costs,
            share,
            policy=make_policy(policy),
            config=config,
            bytes_per_task=op.bytes_per_task,
            tracer=tracer,
            op_label=op.name,
            trace_proc_offset=lane_offset,
        )
        if tracer is not None:
            tracer.emit(OP_BEGIN, 0.0, op=op.name, share=share)
            tracer.emit(
                OP_END, result.makespan, op=op.name, share=share
            )
        lane_offset += share
        results.append(result)
    makespan = max(r.makespan for r in results)
    return ConcurrentRunResult(makespan=makespan, per_op=results, shares=shares)


def _run_work_conserving(
    ops: Sequence[ParallelOp],
    p: int,
    shares: Sequence[int],
    config: MachineConfig,
    policy: str,
    tracer: Optional[Tracer] = None,
) -> ConcurrentRunResult:
    """One combined distributed run.

    Every operation's data is block-decomposed over the *whole* machine
    (each array lives on all p processors, owner-computes); the allocation
    decides the initial execution priority — processors in an operation's
    share start on that operation's local tasks, the rest start on their
    other-op tasks — and chunk re-assignment smooths from there.
    """
    from .distributed import block_distribution

    combined: List[float] = []
    queues: List[List[int]] = [[] for _ in range(p)]
    offset = 0
    mean_bytes = sum(op.bytes_per_task * op.size for op in ops) / max(
        sum(op.size for op in ops), 1
    )
    task_labels: Optional[List[str]] = [] if tracer is not None else None
    for op in ops:
        local = block_distribution(op.size, p)
        for proc, indices in enumerate(local):
            queues[proc].extend(offset + i for i in indices)
        combined.extend(op.costs)
        offset += op.size
        if task_labels is not None:
            task_labels.extend([op.name] * op.size)
    result = run_distributed(
        combined,
        p,
        policy=make_policy(policy),
        config=config,
        bytes_per_task=mean_bytes,
        initial_queues=queues,
        tracer=tracer,
        op_label="+".join(op.name for op in ops),
        task_labels=task_labels,
    )
    if tracer is not None:
        for op, share in zip(ops, shares):
            tracer.emit(OP_BEGIN, 0.0, op=op.name, share=share)
            tracer.emit(OP_END, result.makespan, op=op.name, share=share)
    return ConcurrentRunResult(
        makespan=result.makespan, per_op=[result], shares=list(shares)
    )


# ---------------------------------------------------------------------------
# Pipelined loops
# ---------------------------------------------------------------------------


@dataclass
class PipelineIteration:
    """Task costs of one iteration's three stages."""

    independent: ParallelOp
    dependent: ParallelOp
    merge: ParallelOp


@dataclass
class PipelineRunResult:
    makespan: float
    total_work: float
    iterations: int
    splits: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def efficiency_on(self) -> Callable[[int], float]:
        return lambda p: self.total_work / (p * self.makespan) if self.makespan else 1.0


def run_pipelined(
    iterations: Sequence[PipelineIteration],
    p: int,
    config: Optional[MachineConfig] = None,
    policy: str = "taper",
    overlap: bool = True,
    tracer: Optional[Tracer] = None,
) -> PipelineRunResult:
    """Execute a pipelined loop.

    With ``overlap`` the runtime overlaps iteration i's A_I with iteration
    i-1's A_D/A_M, splitting processors via the Eq. 1 balancer; without it
    (the non-pipelined baseline) the three stages of each iteration run in
    sequence on all ``p`` processors.
    """
    config = config or MachineConfig(processors=p)
    total_work = sum(
        it.independent.total_work + it.dependent.total_work + it.merge.total_work
        for it in iterations
    )
    if not iterations:
        return PipelineRunResult(makespan=0.0, total_work=0.0, iterations=0)

    def stage_time(op: ParallelOp, share: int) -> float:
        if op.size == 0 or share <= 0:
            return 0.0
        return run_distributed(
            op.costs,
            max(share, 1),
            policy=make_policy(policy),
            config=config,
            bytes_per_task=op.bytes_per_task,
        ).makespan

    def emit_stage(
        start: float, dur: float, stage: str, iteration: int, share: int
    ) -> None:
        if tracer is not None and dur > 0:
            tracer.emit(
                PIPELINE_STAGE,
                start,
                dur=dur,
                op="%s[%d]" % (stage, iteration),
                stage=stage,
                iteration=iteration,
                share=share,
            )

    if not overlap:
        makespan = 0.0
        for index, it in enumerate(iterations):
            for stage_name, op in (
                ("independent", it.independent),
                ("dependent", it.dependent),
                ("merge", it.merge),
            ):
                duration = stage_time(op, p)
                emit_stage(makespan, duration, stage_name, index, p)
                makespan += duration
        return PipelineRunResult(
            makespan=makespan,
            total_work=total_work,
            iterations=len(iterations),
        )

    # Overlapped: in the steady state, iteration i+1's A_I runs alongside
    # iteration i's A_D + A_M.
    splits: List[Tuple[int, int]] = []
    makespan = stage_time(iterations[0].independent, p)  # pipeline fill
    emit_stage(0.0, makespan, "independent", 0, p)
    for index, iteration in enumerate(iterations):
        next_independent = (
            iterations[index + 1].independent
            if index + 1 < len(iterations)
            else None
        )
        dep_work = iteration.dependent.total_work + iteration.merge.total_work
        if next_independent is None or next_independent.size == 0:
            tail_dep = stage_time(iteration.dependent, p)
            emit_stage(makespan, tail_dep, "dependent", index, p)
            tail_merge = stage_time(iteration.merge, p)
            emit_stage(makespan + tail_dep, tail_merge, "merge", index, p)
            makespan += tail_dep + tail_merge
            continue
        estimator_next = FinishingTimeEstimator(
            profile_of(next_independent), config
        )
        dep_profile = OpProfile(
            tasks=iteration.dependent.size + iteration.merge.size,
            mean=(
                dep_work / max(iteration.dependent.size + iteration.merge.size, 1)
            ),
            stddev=iteration.dependent.stddev,
            setup_bytes=0.0,
        )
        estimator_dep = FinishingTimeEstimator(dep_profile, config)
        if tracer is not None:
            tracer.now = makespan
        allocation = allocate_pair(
            p,
            estimator_next.finish,
            estimator_dep.finish,
            tracer=tracer,
            labels=("independent[%d]" % (index + 1), "dependent[%d]" % index),
        )
        splits.append((allocation.p1, allocation.p2))
        t_next = stage_time(next_independent, allocation.p1)
        t_dep = stage_time(iteration.dependent, allocation.p2) + stage_time(
            iteration.merge, allocation.p2
        )
        emit_stage(makespan, t_next, "independent", index + 1, allocation.p1)
        emit_stage(
            makespan, t_dep, "dependent+merge", index, allocation.p2
        )
        makespan += max(t_next, t_dep)
    return PipelineRunResult(
        makespan=makespan,
        total_work=total_work,
        iterations=len(iterations),
        splits=splits,
    )


# ---------------------------------------------------------------------------
# Whole-graph execution
# ---------------------------------------------------------------------------


@dataclass
class GraphRunResult:
    makespan: float
    total_work: float
    processors: int
    op_finish: Dict[int, float] = field(default_factory=dict)

    @property
    def efficiency(self) -> float:
        if self.makespan <= 0 or self.processors <= 0:
            return 1.0
        return self.total_work / (self.processors * self.makespan)


class GraphExecutor:
    """Event-driven execution of a Delirium graph with preemptive
    re-allocation at every change in the running set.

    Operations progress at a rate derived from Eq. 1 for their current
    share: an operation with remaining work W and share q completes W at
    rate ``W_total / finish(q)`` scaled to its remaining fraction.  This
    rate model is what lets re-allocation mid-operation (the paper's
    scenario: "A begins executing first and has partially completed when
    B1 begins") be simulated cheaply.
    """

    def __init__(
        self,
        graph,
        op_tasks: Dict[int, ParallelOp],
        p: int,
        config: Optional[MachineConfig] = None,
        allocator: str = "balance",
        tracer: Optional[Tracer] = None,
    ):
        self.graph = graph
        self.op_tasks = op_tasks
        self.p = p
        self.config = config or MachineConfig(processors=p)
        self.allocator = allocator
        self.tracer = tracer

    def _op_name(self, op_id: int) -> str:
        try:
            return self.graph.node(op_id).name
        except Exception:
            return str(op_id)

    def run(self) -> GraphRunResult:
        remaining_preds = {
            node.id: len(self.graph.predecessors(node))
            for node in self.graph.nodes
        }
        ready = [n.id for n in self.graph.nodes if remaining_preds[n.id] == 0]
        running: Dict[int, float] = {}  # op id -> remaining work
        finish_time: Dict[int, float] = {}
        now = 0.0
        total_work = 0.0

        def estimator_for(op_id: int) -> FinishingTimeEstimator:
            op = self.op_tasks.get(op_id)
            if op is None or op.size == 0:
                op = ParallelOp(name=str(op_id), costs=[1.0])
            return FinishingTimeEstimator(profile_of(op), self.config)

        tracer = self.tracer
        while ready or running:
            for op_id in ready:
                op = self.op_tasks.get(op_id)
                work = op.total_work if op is not None and op.size else 1.0
                running[op_id] = work
                total_work += work
                if tracer is not None:
                    tracer.emit(
                        OP_BEGIN, now, op=self._op_name(op_id), work=work
                    )
            ready = []
            # Allocate among running ops.
            ids = sorted(running)
            if self.allocator == "balance" and len(ids) > 1 and self.p >= 2 * len(ids):
                estimators = [estimator_for(i) for i in ids]
                if tracer is not None:
                    tracer.now = now
                shares = allocate_many(
                    self.p,
                    [e.finish for e in estimators],
                    tracer=tracer,
                    labels=[self._op_name(i) for i in ids],
                )
            else:
                shares = allocate_even(self.p, len(ids))
            rates: Dict[int, float] = {}
            for op_id, share in zip(ids, shares):
                share = max(share, 1)
                estimator = estimator_for(op_id)
                op = self.op_tasks.get(op_id)
                base_work = op.total_work if op is not None and op.size else 1.0
                predicted = max(estimator.finish(share), 1e-9)
                rates[op_id] = base_work / predicted
            # Next completion.
            time_left = {
                op_id: running[op_id] / rates[op_id] for op_id in ids
            }
            finisher = min(time_left, key=time_left.get)
            dt = time_left[finisher]
            now += dt
            for op_id in ids:
                running[op_id] -= rates[op_id] * dt
            del running[finisher]
            finish_time[finisher] = now
            if tracer is not None:
                tracer.emit(OP_END, now, op=self._op_name(finisher))
            for succ in self.graph.successors(self.graph.node(finisher)):
                remaining_preds[succ.id] -= 1
                if remaining_preds[succ.id] == 0:
                    ready.append(succ.id)
        return GraphRunResult(
            makespan=now,
            total_work=total_work,
            processors=self.p,
            op_finish=finish_time,
        )
