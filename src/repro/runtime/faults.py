"""Fault model for real execution: plans, injection, and reports.

The paper's runtime (§4) assumes every processor survives the run; a
production pool does not get that luxury.  This module is the
self-contained vocabulary the multiprocessing backend uses to *describe*
faults — it imports nothing from the rest of the runtime so ``config``
and ``backends`` can both import it freely.

Three pieces:

* :class:`FaultPlan` / :class:`FaultSpec` — a deterministic, picklable
  description of faults to inject (kill worker k at its n-th chunk,
  raise inside a kernel, delay a reply), built directly or seeded via
  :meth:`FaultPlan.random`;
* :class:`FaultInjector` — the coordinator-side state machine that turns
  a plan into per-dispatch directives (``("kill",)``, ``("raise",)``,
  ``("delay", seconds)``).  All counting happens in the coordinator
  process, so injection is deterministic given the dispatch order;
* :class:`FaultReport` — the structured account of what actually went
  wrong and what recovery did about it, attached to every mp
  ``BackendRunResult`` instead of an opaque crash.

What is recovered: worker-process death (chunks reclaimed and re-run on
the survivors) and kernel exceptions (per-chunk retry with exponential
backoff, then quarantine).  What is *not*: coordinator death and
corrupted shared state — see DESIGN.md's fault model.
"""

from __future__ import annotations

import random as random_module
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Fault kinds a plan can inject.
#:
#: * ``kill`` — the targeted worker process exits abruptly mid-dispatch;
#: * ``raise`` — the kernel raises inside the chunk loop;
#: * ``delay`` — the worker holds its reply after computing (a slow
#:   *link*: results exist but arrive late);
#: * ``slow``  — the worker stalls *before* computing (a slow *chunk*:
#:   the straggler shape that exercises speculation);
#: * ``coordkill`` — the coordinator itself dies at the matching
#:   dispatch (``os._exit``), simulating coordinator crash for the
#:   checkpoint/resume path.  The journal keeps only chunks completed
#:   before the kill.  **Never inject this in-process in a test** — it
#:   kills the whole interpreter; run the coordinator in a subprocess
#:   and assert on :data:`COORDINATOR_KILL_EXIT`;
#: * ``poolkill`` — kill ``times`` *distinct* workers starting at the
#:   ``at_chunk``-th global dispatch (one per victim's next dispatch).
#:   The deterministic way to say "N/2 of the pool dies mid-run" and
#:   exercise elastic respawn without naming worker ids;
#: * ``spawnfail`` — the pool's next ``times`` *respawn attempts* fail
#:   at spawn time (each counts as another death toward the crash-loop
#:   breaker).  Coordinator-side only; never dispatched to a worker;
#: * ``hostloss`` — the ``dist`` coordinator kills the whole host agent
#:   (every worker on it at once) after the ``at_chunk``-th chunk it
#:   dispatched *to that host*; ``worker`` names the host index in the
#:   ``--hosts`` list (``*`` = the first host to reach the count).  The
#:   multi-host analogue of ``poolkill``: heartbeat reclaim + Eq. 1
#:   re-rationing over the surviving hosts.  Dist-only; the mp injector
#:   never fires it.
FAULT_KINDS = ("kill", "raise", "delay", "slow", "coordkill", "poolkill",
               "spawnfail", "hostloss")

#: Exit status of a coordinator killed by a ``coordkill`` fault.
COORDINATOR_KILL_EXIT = 23


class InjectedFault(RuntimeError):
    """Raised inside a worker kernel by a ``raise`` fault directive."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``worker`` targets a specific worker id, or ``-1`` for "any worker"
    (the fault then fires at the ``at_chunk``-th *global* dispatch).
    ``at_chunk`` counts chunk dispatches (0-based): per-worker when a
    worker is named, across the whole pool otherwise.  ``times`` is how
    many matching dispatches get the fault (``raise`` faults with
    ``times`` larger than the retry budget exhaust it and force
    quarantine).  ``delay`` is the reply delay in seconds for ``delay``
    faults.

    ``poolkill`` reinterprets ``times`` as the number of *distinct*
    workers to kill (each victim dies on its first dispatch at or after
    the ``at_chunk``-th global one); ``worker`` is ignored.
    ``spawnfail`` reinterprets ``times`` as the number of respawn
    attempts to fail; ``worker``/``at_chunk`` are ignored.
    """

    kind: str
    worker: int = -1
    at_chunk: int = 0
    times: int = 1
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; pick from {FAULT_KINDS}"
            )
        if self.at_chunk < 0:
            raise ValueError("FaultSpec.at_chunk must be >= 0")
        if self.times < 1:
            raise ValueError("FaultSpec.times must be >= 1")
        if self.kind in ("delay", "slow") and self.delay <= 0:
            raise ValueError(
                f"{self.kind} faults need FaultSpec.delay > 0"
            )

    def directive(self) -> Tuple:
        """The wire form a worker obeys (``coordkill``/``spawnfail``
        never reach a worker — the coordinator intercepts them; a
        ``poolkill`` victim just sees an ordinary ``kill``)."""
        if self.kind in ("delay", "slow"):
            return (self.kind, self.delay)
        if self.kind == "poolkill":
            return ("kill",)
        return (self.kind,)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults to inject into one run."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        # Accept any iterable of specs; freeze to a tuple.
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- convenience constructors -------------------------------------------

    @classmethod
    def kill_worker(cls, worker: int = -1, at_chunk: int = 0) -> "FaultPlan":
        """Kill ``worker`` when it is handed its ``at_chunk``-th chunk.

        ``worker=-1`` kills whichever worker receives the ``at_chunk``-th
        *global* dispatch — the deterministic choice when you care that
        *a* worker dies, not which one (a named worker may never be
        handed a chunk on a fast run).
        """
        return cls((FaultSpec("kill", worker=worker, at_chunk=at_chunk),))

    @classmethod
    def kernel_raise(
        cls, at_chunk: int = 0, times: int = 1, worker: int = -1
    ) -> "FaultPlan":
        """Make a kernel raise on ``times`` dispatches from ``at_chunk``."""
        return cls(
            (FaultSpec("raise", worker=worker, at_chunk=at_chunk, times=times),)
        )

    @classmethod
    def delay_reply(
        cls, seconds: float, worker: int = -1, at_chunk: int = 0
    ) -> "FaultPlan":
        """Hold a worker's reply for ``seconds`` after it computes."""
        return cls(
            (
                FaultSpec(
                    "delay", worker=worker, at_chunk=at_chunk, delay=seconds
                ),
            )
        )

    @classmethod
    def kill_coordinator(cls, at_chunk: int = 0) -> "FaultPlan":
        """Kill the *coordinator* at its ``at_chunk``-th global dispatch.

        The process exits with :data:`COORDINATOR_KILL_EXIT` after a
        best-effort worker teardown (so chaos tests don't leak orphan
        processes); the chunk journal keeps everything completed before
        the kill.  Only meaningful when the run executes in a
        subprocess — injecting this in-process kills the caller.
        """
        return cls((FaultSpec("coordkill", worker=-1, at_chunk=at_chunk),))

    @classmethod
    def slow_chunk(
        cls, seconds: float, worker: int = -1, at_chunk: int = 0
    ) -> "FaultPlan":
        """Stall one chunk for ``seconds`` *before* it computes.

        The canonical straggler: elapsed time balloons past the
        Kruskal–Weiss tail estimate while the results don't exist yet,
        which is exactly what ``RunConfig.speculation_factor`` fires on.
        """
        return cls(
            (
                FaultSpec(
                    "slow", worker=worker, at_chunk=at_chunk, delay=seconds
                ),
            )
        )

    @classmethod
    def pool_kill(cls, workers: int = 1, at_chunk: int = 0) -> "FaultPlan":
        """Kill ``workers`` distinct pool workers starting at the
        ``at_chunk``-th global dispatch (each victim dies on its next
        dispatch).  The canonical elastic-pool chaos plan: "half the
        pool dies mid-run"."""
        return cls((FaultSpec("poolkill", at_chunk=at_chunk, times=workers),))

    @classmethod
    def host_loss(
        cls, host: int = -1, at_chunk: int = 0, hosts: int = 1
    ) -> "FaultPlan":
        """Kill ``hosts`` distinct host agents, each after the
        ``at_chunk``-th chunk the dist coordinator dispatched to it
        (``host`` pins one agent by its ``--hosts`` index).  The
        multi-host "a machine was withdrawn mid-run" chaos plan."""
        return cls(
            (
                FaultSpec(
                    "hostloss", worker=host, at_chunk=at_chunk, times=hosts
                ),
            )
        )

    @classmethod
    def spawn_failures(cls, attempts: int = 1) -> "FaultPlan":
        """Fail the pool's next ``attempts`` respawn attempts, driving
        the exponential backoff (and, past ``max_respawns``, the
        crash-loop quarantine) deterministically."""
        return cls((FaultSpec("spawnfail", times=attempts),))

    @classmethod
    def random(
        cls,
        seed: int,
        workers: int,
        faults: int = 1,
        kinds: Tuple[str, ...] = ("kill", "raise"),
        max_chunk: int = 8,
    ) -> "FaultPlan":
        """A seeded plan: the same seed always builds the same faults."""
        rng = random_module.Random(seed)
        specs: List[FaultSpec] = []
        for _ in range(faults):
            kind = rng.choice(list(kinds))
            specs.append(
                FaultSpec(
                    kind=kind,
                    worker=rng.randrange(workers),
                    at_chunk=rng.randrange(max_chunk),
                    delay=0.05 if kind == "delay" else 0.0,
                )
            )
        return cls(tuple(specs))


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse the CLI form ``kind[:worker[:chunk[:arg]]]``.

    ``worker`` is an id or ``*`` (any); ``arg`` is ``seconds`` for
    ``delay``/``slow`` faults and ``times`` otherwise (for ``poolkill``
    that is the number of distinct workers to kill; for ``spawnfail``
    the number of respawn attempts to fail).
    Examples: ``kill:1:2`` (kill worker 1 at its 2nd chunk),
    ``raise:*:3:2`` (raise on global dispatches 3 and 4),
    ``delay:0:1:0.25``, ``slow:*:2:0.5`` (stall the 2nd global chunk
    half a second before computing), ``coordkill:*:4`` (the coordinator
    dies at its 4th dispatch — exercise ``--resume``),
    ``poolkill:*:2:2`` (from the 2nd global dispatch, kill 2 distinct
    workers — elastic respawn brings them back), ``spawnfail:*:0:3``
    (the next 3 respawn attempts fail at spawn), ``hostloss:1:2``
    (kill the second ``--hosts`` agent after the 2nd chunk dispatched
    to it — dist backend only).
    """
    parts = text.split(":")
    kind = parts[0]
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r} in {text!r}; "
            f"pick from {FAULT_KINDS}"
        )
    worker = -1
    if len(parts) > 1 and parts[1] not in ("", "*"):
        worker = int(parts[1])
    at_chunk = int(parts[2]) if len(parts) > 2 and parts[2] else 0
    times, delay = 1, 0.0
    if len(parts) > 3 and parts[3]:
        if kind in ("delay", "slow"):
            delay = float(parts[3])
        else:
            times = int(parts[3])
    if kind in ("delay", "slow") and delay <= 0:
        delay = 0.1
    return FaultSpec(
        kind=kind, worker=worker, at_chunk=at_chunk, times=times, delay=delay
    )


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-dispatch directives.

    Lives in the coordinator: it counts chunk dispatches (globally and
    per worker) and fires each spec at most ``times`` times, so the same
    plan against the same dispatch sequence injects the same faults.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._global = 0
        self._per_worker: Dict[int, int] = {}
        self._fired = [0] * len(plan.specs)
        #: Per-``poolkill``-spec set of wids already handed a kill, so
        #: ``times`` counts *distinct* victims.
        self._victims: Dict[int, set] = {}
        #: Chunks dispatched per host (``hostloss`` accounting, dist only).
        self._per_host: Dict[int, int] = {}
        #: Per-``hostloss``-spec set of hosts already killed.
        self._host_victims: Dict[int, set] = {}

    def spawn_failures(self) -> int:
        """Total respawn attempts the plan's ``spawnfail`` specs doom
        (consumed by the pool at session setup, not per dispatch)."""
        return sum(
            spec.times for spec in self.plan.specs
            if spec.kind == "spawnfail"
        )

    def on_dispatch(self, wid: int) -> Optional[Tuple]:
        """The directive for this dispatch, or ``None``.

        At most one fault fires per dispatch (specs are checked in plan
        order); counters advance either way.
        """
        global_index = self._global
        self._global += 1
        worker_index = self._per_worker.get(wid, 0)
        self._per_worker[wid] = worker_index + 1
        for spec_index, spec in enumerate(self.plan.specs):
            if spec.kind in ("spawnfail", "hostloss"):
                # spawnfail is consumed at pool setup; hostloss fires
                # through on_host_dispatch — neither reaches a worker.
                continue
            if spec.kind == "poolkill":
                victims = self._victims.setdefault(spec_index, set())
                if (
                    global_index < spec.at_chunk
                    or wid in victims
                    or len(victims) >= spec.times
                ):
                    continue
                victims.add(wid)
                self._fired[spec_index] += 1
                return spec.directive()
            if spec.worker >= 0 and spec.worker != wid:
                continue
            index = worker_index if spec.worker >= 0 else global_index
            if index < spec.at_chunk:
                continue
            if self._fired[spec_index] >= spec.times:
                continue
            self._fired[spec_index] += 1
            return spec.directive()
        return None

    def on_host_dispatch(self, host: int) -> bool:
        """Advance the per-host chunk count; ``True`` = kill this host.

        The dist coordinator calls this once per chunk dispatched to
        ``host`` (a ``--hosts`` index).  A ``hostloss`` spec fires when
        the named host (or, with ``worker=-1``, any host) reaches its
        ``at_chunk``-th dispatch, at most ``times`` *distinct* hosts
        per spec.
        """
        count = self._per_host.get(host, 0)
        self._per_host[host] = count + 1
        for spec_index, spec in enumerate(self.plan.specs):
            if spec.kind != "hostloss":
                continue
            victims = self._host_victims.setdefault(spec_index, set())
            if host in victims or len(victims) >= spec.times:
                continue
            if spec.worker >= 0 and spec.worker != host:
                continue
            if count < spec.at_chunk:
                continue
            victims.add(host)
            self._fired[spec_index] += 1
            return True
        return False


@dataclass
class FaultReport:
    """What went wrong during one run, and what recovery did about it.

    Attached to every mp :class:`BackendRunResult` (empty for clean
    runs) so callers inspect structure instead of parsing a traceback.
    """

    #: Worker ids detected dead, in detection order.
    workers_died: List[int] = field(default_factory=list)
    #: Chunks reclaimed from dead workers and re-enqueued.
    chunks_reassigned: int = 0
    #: Tasks inside those reclaimed chunks.
    tasks_reassigned: int = 0
    #: Chunk retry attempts after kernel exceptions (with backoff).
    retries: int = 0
    #: ``(op label, task index)`` pairs whose retry budget ran out.
    quarantined: List[Tuple[str, int]] = field(default_factory=list)
    #: Fault directives actually injected (kind/worker/chunk dicts).
    injected: List[Dict[str, Any]] = field(default_factory=list)
    #: Last message timestamp per worker (heartbeat bookkeeping),
    #: seconds since run start.
    worker_last_seen: Dict[int, float] = field(default_factory=dict)
    #: Straggler chunks duplicated onto idle workers (speculation).
    chunks_speculated: int = 0
    #: Task results dropped because another copy finished first
    #: (speculation first-result-wins, or a late report from a worker
    #: whose chunk had already been reclaimed).
    duplicate_results_dropped: int = 0
    #: Dead pool workers respawned during the run (elastic pool only).
    workers_respawned: int = 0
    #: Pool slots quarantined by the crash-loop breaker: structured
    #: ``{"slot", "deaths", "window", "reason"}`` dicts.
    pool_quarantined: List[Dict[str, Any]] = field(default_factory=list)
    #: Host agents lost mid-run (dist backend): ``--hosts`` indices in
    #: detection order (their workers also appear in ``workers_died``).
    hosts_lost: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every task's result made it into the totals."""
        return not self.quarantined

    @property
    def any_fault(self) -> bool:
        """Whether the run saw any fault-recovery activity at all."""
        return bool(
            self.workers_died
            or self.retries
            or self.quarantined
            or self.injected
            or self.chunks_speculated
            or self.duplicate_results_dropped
            or self.workers_respawned
            or self.pool_quarantined
            or self.hosts_lost
        )

    def merge(self, other: "FaultReport") -> None:
        """Fold another run's report into this one (multi-step drivers)."""
        self.workers_died.extend(other.workers_died)
        self.chunks_reassigned += other.chunks_reassigned
        self.tasks_reassigned += other.tasks_reassigned
        self.retries += other.retries
        self.quarantined.extend(other.quarantined)
        self.injected.extend(other.injected)
        self.worker_last_seen.update(other.worker_last_seen)
        self.chunks_speculated += other.chunks_speculated
        self.duplicate_results_dropped += other.duplicate_results_dropped
        self.workers_respawned += other.workers_respawned
        self.pool_quarantined.extend(other.pool_quarantined)
        self.hosts_lost.extend(other.hosts_lost)

    def summary(self) -> str:
        """One line per fault category ("no faults" on a clean run)."""
        if not self.any_fault:
            return "no faults"
        parts = []
        if self.workers_died:
            parts.append(
                f"workers died: {self.workers_died} "
                f"({self.chunks_reassigned} chunks / "
                f"{self.tasks_reassigned} tasks reassigned)"
            )
        if self.retries:
            parts.append(f"chunk retries: {self.retries}")
        if self.quarantined:
            parts.append(
                f"quarantined tasks: {len(self.quarantined)} "
                f"{self.quarantined[:8]}"
            )
        if self.injected:
            parts.append(f"faults injected: {len(self.injected)}")
        if self.chunks_speculated:
            parts.append(
                f"chunks speculated: {self.chunks_speculated} "
                f"({self.duplicate_results_dropped} duplicate results "
                "dropped)"
            )
        elif self.duplicate_results_dropped:
            parts.append(
                f"duplicate results dropped: "
                f"{self.duplicate_results_dropped}"
            )
        if self.workers_respawned:
            parts.append(f"workers respawned: {self.workers_respawned}")
        if self.pool_quarantined:
            slots = [entry["slot"] for entry in self.pool_quarantined]
            parts.append(f"pool slots quarantined: {slots}")
        if self.hosts_lost:
            parts.append(f"hosts lost: {self.hosts_lost}")
        return "; ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """The report as plain JSON-serializable data."""
        return {
            "ok": self.ok,
            "workers_died": list(self.workers_died),
            "chunks_reassigned": self.chunks_reassigned,
            "tasks_reassigned": self.tasks_reassigned,
            "retries": self.retries,
            "quarantined": [list(pair) for pair in self.quarantined],
            "injected": list(self.injected),
            "worker_last_seen": dict(self.worker_last_seen),
            "chunks_speculated": self.chunks_speculated,
            "duplicate_results_dropped": self.duplicate_results_dropped,
            "workers_respawned": self.workers_respawned,
            "pool_quarantined": [
                dict(entry) for entry in self.pool_quarantined
            ],
            "hosts_lost": list(self.hosts_lost),
        }
