"""Tasks and parallel operations (Section 4).

"The set of non-re-entrant operators determines the minimum units of
scheduling.  Henceforth, we'll call these indivisible scheduling units
*tasks*."  A :class:`ParallelOp` is one data-parallel Delirium operator:
an ordered sequence of task costs (work units) plus the data each task
carries (for communication estimates).

:class:`RealOp` is the executable counterpart: the same scheduling shape,
but each task is a real Python callable invocation ``kernel(payload)``
that the multiprocessing backend dispatches to worker processes (and the
simulator can evaluate serially for result checking).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .kernel import Kernel, as_kernel


@dataclass
class ParallelOp:
    """A parallel operation: ``costs[k]`` is task ``k``'s execution time.

    ``bytes_per_task`` sizes the data that moves when a task is
    transferred to a non-owner processor.  ``name`` is for reporting.
    """

    name: str
    costs: List[float]
    bytes_per_task: float = 256.0

    def __post_init__(self):
        if any(c < 0 for c in self.costs):
            raise ValueError("task costs must be non-negative")

    @property
    def size(self) -> int:
        return len(self.costs)

    @property
    def total_work(self) -> float:
        return sum(self.costs)

    @property
    def mean(self) -> float:
        if not self.costs:
            return 0.0
        return self.total_work / len(self.costs)

    @property
    def variance(self) -> float:
        if len(self.costs) < 2:
            return 0.0
        mu = self.mean
        return sum((c - mu) ** 2 for c in self.costs) / (len(self.costs) - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def cv(self) -> float:
        """Coefficient of variation — the irregularity measure."""
        mu = self.mean
        if mu == 0:
            return 0.0
        return self.stddev / mu

    def prefix_means(self, buckets: int = 8) -> List[float]:
        """Bucketed means along the iteration axis — the runtime's *cost
        function* estimating task cost as a function of iteration number."""
        if not self.costs:
            return []
        size = max(1, len(self.costs) // buckets)
        means: List[float] = []
        for start in range(0, len(self.costs), size):
            piece = self.costs[start : start + size]
            means.append(sum(piece) / len(piece))
        return means


@dataclass
class RealOp:
    """A parallel operation whose tasks are real Python calls.

    Task ``k`` executes ``kernel(payloads[k])`` and yields a numeric
    value; the runtime treats the call as the indivisible scheduling unit.
    ``kernel`` is a :class:`~repro.runtime.kernel.Kernel` declaration —
    per-task fn, optional vectorized ``batch_fn`` over a whole chunk,
    optional ``cost_fn`` — and is normalised to one at construction: a
    bare callable still works via the deprecation adapter
    (:func:`~repro.runtime.kernel.as_kernel`).  For ``multiprocessing``
    dispatch every declared callable must be *module-level* and each
    payload picklable.

    ``costs`` optionally declares per-task cost estimates (work units) so
    the simulator — and the mp backend in ``cost_source="declared"`` mode
    — can schedule the operation without timing it first.  When omitted,
    they are derived from the kernel's ``cost_fn`` over the payloads, so
    cost declarations live on the :class:`Kernel` once instead of being
    re-threaded through every builder.
    """

    name: str
    kernel: Union[Kernel, Callable[[Any], float]]
    payloads: List[Any]
    bytes_per_task: float = 256.0
    costs: Optional[List[float]] = None
    #: Op names this operation depends on (graph/pipeline execution).
    deps: Tuple[str, ...] = ()
    #: Fixed task list; :class:`StreamOp` flips this to ``True``.
    is_stream: ClassVar[bool] = False

    def __post_init__(self):
        if not isinstance(self.kernel, Kernel):
            self.kernel = as_kernel(self.kernel)
        if self.costs is None:
            self.costs = self.kernel.costs_for(self.payloads)
        if self.costs is not None and len(self.costs) != len(self.payloads):
            raise ValueError(
                f"RealOp {self.name!r}: {len(self.costs)} declared costs "
                f"for {len(self.payloads)} payloads"
            )

    @property
    def size(self) -> int:
        """Task count (for a stream: tasks admitted so far)."""
        return len(self.payloads)

    def to_parallel_op(self, default_cost: float = 10.0) -> ParallelOp:
        """The simulator's view: declared costs (or a flat default)."""
        costs = (
            list(self.costs)
            if self.costs is not None
            else [default_cost] * self.size
        )
        return ParallelOp(
            name=self.name, costs=costs, bytes_per_task=self.bytes_per_task
        )

    def run_serial(self) -> Tuple[List[float], float]:
        """Execute every task in-process, in index order.

        Returns ``(measured_costs_seconds, value_total)`` — the serial
        baseline the mp backend's speedup is measured against, and the
        ground-truth result total for equivalence checks.
        """
        measured: List[float] = []
        total = 0.0
        kernel = self.kernel
        for payload in self.payloads:
            start = time.perf_counter()
            value = kernel(payload)
            measured.append(time.perf_counter() - start)
            total += float(value)
        return measured, total


@dataclass
class StreamPage:
    """One paginated batch of stream tasks.

    ``payloads[k]`` is the argument of the page's ``k``-th task;
    ``costs`` optionally declares the matching per-task cost estimates
    (required when the run uses ``cost_source="declared"``).
    """

    payloads: List[Any]
    costs: Optional[List[float]] = None

    def __post_init__(self):
        if self.costs is not None and len(self.costs) != len(self.payloads):
            raise ValueError(
                f"StreamPage: {len(self.costs)} declared costs for "
                f"{len(self.payloads)} payloads"
            )

    @property
    def size(self) -> int:
        """Task count of this page."""
        return len(self.payloads)


def as_stream_page(obj: Any) -> StreamPage:
    """Normalise a source item to a :class:`StreamPage`.

    Sources may yield :class:`StreamPage` objects directly or bare
    payload sequences (lists, tuples, numpy arrays); anything else is a
    :class:`TypeError`.
    """
    if isinstance(obj, StreamPage):
        return obj
    if isinstance(obj, (list, tuple)):
        return StreamPage(payloads=list(obj))
    if hasattr(obj, "__len__") and hasattr(obj, "__getitem__"):
        # numpy arrays and other sequence-likes: one payload per row.
        return StreamPage(payloads=list(obj))
    raise TypeError(
        f"stream source yielded {type(obj).__name__}; expected a "
        "StreamPage or a payload sequence"
    )


@dataclass(frozen=True)
class PageResult:
    """One settled page, delivered to a :class:`StreamOp` sink in order.

    ``seq`` is the page's arrival number (0-based), ``base`` its first
    global task index, ``tasks`` its task count, and ``value`` the sum
    of its task results (quarantined tasks contribute nothing).
    """

    seq: int
    base: int
    tasks: int
    value: float


@dataclass
class StreamOp(RealOp):
    """A parallel operation whose tasks arrive in paginated batches.

    Instead of materialising ``payloads`` up front, a ``StreamOp``
    carries a coordinator-side ``source``: a zero-argument callable
    returning an iterator of pages (:class:`StreamPage` objects or bare
    payload sequences).  The mp backend admits pages under a bounded
    in-flight window with high/low-watermark backpressure, re-chunks
    each page with the cost statistics observed so far in the stream,
    and re-rations workers as the remaining-cost estimate evolves; see
    ``docs/ARCHITECTURE.md``.

    ``source`` runs only in the coordinator process and need not be
    picklable (the kernel and payloads still must be, exactly as for
    :class:`RealOp`).  An optional ``sink`` receives one
    :class:`PageResult` per fully-settled page, in page order; a slow
    sink exerts backpressure on admission.  ``payloads``/``costs`` grow
    as pages are admitted, so ``size`` reflects admitted tasks only.

    Only the mp backend executes streams; the simulator refuses them.
    """

    payloads: List[Any] = field(default_factory=list)
    #: Coordinator-side page fetcher: ``source()`` -> iterator of pages.
    source: Optional[Callable[[], Iterable[Any]]] = None
    #: Optional per-page result consumer, called in page order.
    sink: Optional[Callable[[PageResult], None]] = None
    is_stream: ClassVar[bool] = True

    def __post_init__(self):
        super().__post_init__()
        if self.source is None:
            raise ValueError(
                f"StreamOp {self.name!r} requires a source callable"
            )
        if self.costs is None:
            # Declared costs accumulate page by page (admit()); a page
            # arriving without costs poisons the list back to None.
            self.costs = [] if not self.payloads else self.costs

    def open_source(self) -> Iterator[Any]:
        """Start the page iterator (coordinator side only)."""
        return iter(self.source())

    def admit(self, page: StreamPage) -> int:
        """Fold one page into the op; returns its base task index."""
        base = len(self.payloads)
        self.payloads.extend(page.payloads)
        if page.costs is not None and self.costs is not None:
            self.costs.extend(page.costs)
        elif page.costs is None:
            self.costs = None
        return base


def spin_task(seconds: float) -> float:
    """Busy-spin for ``seconds`` of real CPU time; returns 1.0.

    The bridge from simulated to real execution: any :class:`ParallelOp`
    becomes executable by mapping each declared task cost to a calibrated
    burn (``RunConfig.time_scale`` seconds per work unit).  Module-level
    so it pickles under every multiprocessing start method.
    """
    deadline = time.perf_counter() + seconds
    x = 1.0
    while time.perf_counter() < deadline:
        # Keep the ALU busy so the burn measures compute, not sleep.
        x = x * 1.0000001 + 1e-9
    return 1.0


#: The calibrated-burn kernel, declared once so wrapped simulated ops
#: never trip the bare-callable deprecation adapter.  No ``batch_fn``:
#: a burn is pure per-task wall time, there is nothing to vectorize.
SPIN_KERNEL = Kernel(fn=spin_task, name="spin")


def real_op_from_parallel(op: ParallelOp, time_scale: float) -> RealOp:
    """Wrap a simulated operation as real busy-work (see :func:`spin_task`)."""
    return RealOp(
        name=op.name,
        kernel=SPIN_KERNEL,
        payloads=[cost * time_scale for cost in op.costs],
        bytes_per_task=op.bytes_per_task,
        costs=list(op.costs),
    )
