"""Tasks and parallel operations (Section 4).

"The set of non-re-entrant operators determines the minimum units of
scheduling.  Henceforth, we'll call these indivisible scheduling units
*tasks*."  A :class:`ParallelOp` is one data-parallel Delirium operator:
an ordered sequence of task costs (work units) plus the data each task
carries (for communication estimates).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ParallelOp:
    """A parallel operation: ``costs[k]`` is task ``k``'s execution time.

    ``bytes_per_task`` sizes the data that moves when a task is
    transferred to a non-owner processor.  ``name`` is for reporting.
    """

    name: str
    costs: List[float]
    bytes_per_task: float = 256.0

    def __post_init__(self):
        if any(c < 0 for c in self.costs):
            raise ValueError("task costs must be non-negative")

    @property
    def size(self) -> int:
        return len(self.costs)

    @property
    def total_work(self) -> float:
        return sum(self.costs)

    @property
    def mean(self) -> float:
        if not self.costs:
            return 0.0
        return self.total_work / len(self.costs)

    @property
    def variance(self) -> float:
        if len(self.costs) < 2:
            return 0.0
        mu = self.mean
        return sum((c - mu) ** 2 for c in self.costs) / (len(self.costs) - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def cv(self) -> float:
        """Coefficient of variation — the irregularity measure."""
        mu = self.mean
        if mu == 0:
            return 0.0
        return self.stddev / mu

    def prefix_means(self, buckets: int = 8) -> List[float]:
        """Bucketed means along the iteration axis — the runtime's *cost
        function* estimating task cost as a function of iteration number."""
        if not self.costs:
            return []
        size = max(1, len(self.costs) // buckets)
        means: List[float] = []
        for start in range(0, len(self.costs), size):
            piece = self.costs[start : start + size]
            means.append(sum(piece) / len(piece))
        return means
