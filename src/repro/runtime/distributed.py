"""The distributed TAPER algorithm (Section 4.1.1).

"In the distributed TAPER algorithm the p processors are logically
connected as a binary tree with p leaves. ...  All processors start in
epoch 0.  When a processor begins executing a chunk it sends its current
epoch value (called a token) to its parent ...  When the root receives p
tokens from the same epoch, it increments the global epoch value and
broadcasts a message through the tree ...  Processors compete for the p
chunks of each epoch.  If processor a can get two tokens of value i to the
root before processor b can send one token of value i, then the root will
re-assign processor b's chunk ... to processor a. ...  If most of the
actual task cost is on a few processors, this scheme will degenerate into
the centralized TAPER algorithm.  If task costs are independent then we
expect most tasks to remain on the processor owning them."

The simulation is event-driven: tasks start block-distributed by the
owner-computes rule; a processor that exhausts its local queue competes
for (steals) the next chunk of the most loaded processor, paying the data
transfer; every chunk acquisition carries an amortised share of the
epoch's tree round (p tokens + one broadcast per epoch).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..obs.events import (
    CHUNK_ACQUIRE,
    CHUNK_COMPLETE,
    CHUNK_REASSIGN,
    EPOCH_ADVANCE,
    TASK_DISPATCH,
    TOKEN_ROUND,
    Tracer,
)
from .cost_model import CostFunction
from .machine import MachineConfig, RunResult
from .schedulers import ChunkPolicy
from .taper import TaperPolicy


@dataclass
class DistributedRunResult(RunResult):
    """Adds locality accounting to the basic result."""

    tasks_total: int = 0
    #: Per-processor finish times (diagnostics; None when p is huge).
    finish_times: Optional[List[float]] = None

    @property
    def locality(self) -> float:
        """Fraction of tasks executed by their owning processor."""
        if self.tasks_total == 0:
            return 1.0
        return 1.0 - self.tasks_moved / self.tasks_total


def block_distribution(n: int, p: int) -> List[List[int]]:
    """Owner-computes initial decomposition: contiguous blocks."""
    queues: List[List[int]] = [[] for _ in range(p)]
    base = n // p
    extra = n % p
    position = 0
    for proc in range(p):
        count = base + (1 if proc < extra else 0)
        queues[proc] = list(range(position, position + count))
        position += count
    return queues


def run_distributed(
    costs: Sequence[float],
    p: int,
    policy: Optional[ChunkPolicy] = None,
    config: Optional[MachineConfig] = None,
    bytes_per_task: float = 256.0,
    initial_queues: Optional[List[List[int]]] = None,
    cost_guided: bool = True,
    tracer: Optional[Tracer] = None,
    op_label: str = "op",
    task_labels: Optional[Sequence[str]] = None,
    trace_proc_offset: int = 0,
) -> DistributedRunResult:
    """Simulate one parallel operation under distributed TAPER.

    ``initial_queues`` overrides the owner-computes block distribution —
    used by the orchestrator to seed the processor-allocation decision
    (e.g. tasks of two concurrent operations placed on disjoint processor
    groups, with stealing then smoothing the boundary).

    ``cost_guided`` enables the cost-function-driven decisions (run the
    predicted-expensive tasks first, pick victims by predicted remaining
    *work*, re-assign the predicted-expensive tail).  With it off, the
    scheduler is blind: FIFO local order, victims by task count, tail
    steals — the ablation baseline for "TAPER *with cost functions*".

    ``tracer`` records the full scheduling event stream (``repro.obs``);
    tracing is observational only and never changes the simulated result.
    ``op_label`` names the operation in emitted events; ``task_labels``
    optionally attributes each task index to a finer label (used by the
    work-conserving combined runs to keep per-op metrics); and
    ``trace_proc_offset`` shifts the emitted processor ids so concurrent
    runs on disjoint processor groups get disjoint timeline lanes.
    """
    config = config or MachineConfig(processors=p)
    policy = policy or TaperPolicy()
    n = len(costs)
    if n == 0:
        return DistributedRunResult(
            makespan=0.0, total_work=0.0, processors=p, chunks=0, tasks_total=0
        )
    if initial_queues is not None:
        if len(initial_queues) != p:
            raise ValueError("initial_queues must have one queue per processor")
        queues = [list(q) for q in initial_queues]
    else:
        queues = block_distribution(n, p)
    # Estimated remaining work per processor, maintained incrementally.
    # The real runtime estimates this through its cost function (task cost
    # as a function of iteration number — accurate because irregularity is
    # spatially clustered); the simulation uses the true costs directly.
    work_left = [sum(costs[i] for i in q) for q in queues]
    # Cost-function-guided local ordering: run the tasks predicted most
    # expensive first (LPT), so stragglers start early rather than being
    # discovered at the end of the operation.
    if cost_guided:
        for queue in queues:
            queue.sort(key=lambda i: -costs[i])
    remaining_per_proc = [len(q) for q in queues]
    total_remaining = n
    cost_function = CostFunction(bucket_size=max(1, n // 16))
    # Amortised tree cost per chunk acquisition: one epoch = p tokens +
    # broadcast, i.e. one tree round per p chunks.
    epoch_share = config.tree_round_time(p) / max(p, 1)

    trace = tracer is not None
    if trace and hasattr(policy, "tracer"):
        policy.tracer = tracer
    # Per-processor open-chunk bookkeeping (tracing only).
    chunk_start = [0.0] * p if trace else None
    chunk_tasks = [0] * p if trace else None

    heap: List[tuple] = [(0.0, proc) for proc in range(p)]
    heapq.heapify(heap)
    finish = [0.0] * p
    # Tasks left in the processor's current chunk claim.  A claim is a
    # *promise* over the local queue, not an atomic grab: when another
    # processor out-races this one to the root, the tail of the claim is
    # re-assigned ("processor b is forced to re-interpret the chunk it is
    # currently executing as ... containing fewer tasks") — modelled by
    # thieves taking the unexecuted remainder straight from the queue.
    claim = [0] * p
    chunks = 0
    tasks_moved = 0
    comm_time = 0.0

    while total_remaining > 0:
        clock, proc = heapq.heappop(heap)
        overhead = 0.0
        if claim[proc] <= 0 or remaining_per_proc[proc] == 0:
            # Acquire a new chunk (one scheduling event).  Processors
            # compete for the epoch's chunks: a processor that is ahead of
            # the most loaded one takes the re-assigned tail of that
            # processor's work, not just when it is fully idle — this is
            # the root's continuous chunk re-assignment.
            if trace:
                tracer.now = clock
            size = policy.next_chunk(total_remaining, p, cost_function)
            size = max(1, min(size, total_remaining))
            if cost_guided:
                victim = max(range(p), key=lambda q: work_left[q])
            else:
                victim = max(range(p), key=lambda q: remaining_per_proc[q])
            mean_chunk_work = cost_function.stats.mean * size or size
            should_steal = remaining_per_proc[proc] == 0 or (
                cost_guided
                and victim != proc
                and work_left[victim]
                > 1.5 * work_left[proc] + mean_chunk_work
            )
            if should_steal and remaining_per_proc[victim] > 0:
                if remaining_per_proc[proc] == 0:
                    # Fully idle: take at least half the backlog.
                    size = max(size, remaining_per_proc[victim] // 2)
                else:
                    # Rebalancing steal: close half the work gap.
                    target = (work_left[victim] - work_left[proc]) / 2.0
                    accumulated = 0.0
                    count = 0
                    for task_index in sorted(
                        queues[victim], key=lambda i: -costs[i]
                    ):
                        if accumulated >= target or count >= size * 4:
                            break
                        accumulated += costs[task_index]
                        count += 1
                    size = max(size, count)
                size = min(size, remaining_per_proc[victim])
                # Cost-function-guided re-assignment: take the tasks
                # predicted most expensive.  (A task being *executed* has
                # already been popped, so everything queued is movable —
                # the paper's claim re-interpretation.)  Blind mode takes
                # the queue tail.
                if cost_guided:
                    by_cost = sorted(queues[victim], key=lambda i: -costs[i])
                    stolen = by_cost[:size]
                else:
                    stolen = queues[victim][-size:]
                stolen_set = set(stolen)
                queues[victim] = [
                    i for i in queues[victim] if i not in stolen_set
                ]
                remaining_per_proc[victim] -= size
                stolen_work = sum(costs[i] for i in stolen)
                work_left[victim] -= stolen_work
                queues[proc].extend(stolen)
                # Keep the local LPT order so a re-assigned expensive task
                # runs immediately instead of bouncing between thieves.
                if cost_guided:
                    queues[proc].sort(key=lambda i: -costs[i])
                remaining_per_proc[proc] += size
                work_left[proc] += stolen_work
                claim[victim] = min(claim[victim], remaining_per_proc[victim])
                if trace:
                    tracer.emit(
                        CHUNK_REASSIGN,
                        clock,
                        proc=proc + trace_proc_offset,
                        op=op_label,
                        victim=victim + trace_proc_offset,
                        tasks=size,
                        bytes=size * bytes_per_task,
                    )
                    transfer = config.transfer(
                        size * bytes_per_task,
                        tracer,
                        time=clock,
                        src=victim + trace_proc_offset,
                        dst=proc + trace_proc_offset,
                        op=op_label,
                        tasks=size,
                    )
                else:
                    transfer = config.transfer_time(size * bytes_per_task)
                overhead += transfer
                comm_time += transfer
                tasks_moved += size
            elif remaining_per_proc[proc] == 0:
                break  # racing pops; nothing left anywhere
            claim[proc] = min(max(size, 1), remaining_per_proc[proc])
            overhead += config.sched_overhead + epoch_share
            if trace:
                if chunk_tasks[proc]:
                    tracer.emit(
                        CHUNK_COMPLETE,
                        chunk_start[proc],
                        dur=clock - chunk_start[proc],
                        proc=proc + trace_proc_offset,
                        op=op_label,
                        tasks=chunk_tasks[proc],
                    )
                chunk_start[proc] = clock
                chunk_tasks[proc] = 0
                # One epoch = p chunks; a new epoch costs one tree round.
                if chunks % p == 0:
                    epoch = chunks // p
                    tracer.emit(
                        EPOCH_ADVANCE, clock, op=op_label, epoch=epoch
                    )
                    tracer.emit(
                        TOKEN_ROUND,
                        clock,
                        dur=config.tree_round_time(p),
                        op=op_label,
                        epoch=epoch,
                    )
                tracer.emit(
                    CHUNK_ACQUIRE,
                    clock,
                    dur=config.sched_overhead + epoch_share,
                    proc=proc + trace_proc_offset,
                    op=op_label,
                    size=claim[proc],
                    remaining=total_remaining,
                    epoch=chunks // p,
                )
            chunks += 1
        # Execute one task of the current claim; re-enter the event loop
        # so faster processors can re-assign the claim's tail.
        index = queues[proc].pop(0)
        remaining_per_proc[proc] -= 1
        total_remaining -= 1
        claim[proc] -= 1
        cost = costs[index]
        work_left[proc] -= cost
        cost_function.observe(index, cost)
        clock += overhead + cost + config.task_overhead
        if trace:
            tracer.emit(
                TASK_DISPATCH,
                clock - cost - config.task_overhead,
                dur=cost,
                proc=proc + trace_proc_offset,
                op=task_labels[index] if task_labels else op_label,
                task=index,
                overhead=config.task_overhead,
            )
            chunk_tasks[proc] += 1
        finish[proc] = clock
        heapq.heappush(heap, (clock, proc))

    if trace:
        for proc in range(p):
            if chunk_tasks[proc]:
                tracer.emit(
                    CHUNK_COMPLETE,
                    chunk_start[proc],
                    dur=finish[proc] - chunk_start[proc],
                    proc=proc + trace_proc_offset,
                    op=op_label,
                    tasks=chunk_tasks[proc],
                )

    return DistributedRunResult(
        makespan=max(finish),
        total_work=float(sum(costs)),
        processors=p,
        chunks=chunks,
        tasks_moved=tasks_moved,
        comm_time=comm_time,
        tasks_total=n,
        finish_times=list(finish),
    )
