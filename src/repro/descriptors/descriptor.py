"""Symbolic data descriptors and their builder (Section 3.2).

A :class:`Descriptor` is two sets of access triples — locations read and
locations written.  "The read set contains locations which are live on
entry to the code being annotated; reads known to be dominated by writes in
the write set are not included."

:class:`DescriptorBuilder` assembles descriptors for arbitrary statement
regions of an analysed unit.  Loops *inside* the region are promoted: the
induction variable is replaced by its range, and mask-style guards over the
variable become dimension masks, yielding the paper's

    write: q[1..10/(miss[*] <> 1), 1..10]

Names the caller wants to keep *unresolved* (the paper: "the analyzer
chooses the set of SSA names that may remain unresolved") simply stay
symbolic: build a descriptor for a loop's body rather than the loop itself
and the induction variable remains a free symbol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..analysis import AnalysisResult
from ..analysis.symbolic import SymExpr, SymRange, expr_from_ast, range_from_do
from ..lang import ast
from ..lang.builtins import lookup as lookup_intrinsic
from .guards import (
    Guard,
    MaskPred,
    TRUE_GUARD,
    guard_from_condition,
    guard_mentions,
)
from .pattern import DimPattern, Mask, Pattern
from .triple import AccessTriple, triple_covered_by, triples_disjoint


@dataclass(frozen=True)
class Descriptor:
    """A read/write summary of a computation's memory behaviour."""

    reads: Tuple[AccessTriple, ...] = ()
    writes: Tuple[AccessTriple, ...] = ()

    # -- algebra -------------------------------------------------------------

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "Descriptor":
        """Rename/replace symbols (used to form iteration ``i-1``'s
        descriptor for pipelining, Section 3.3.2)."""
        return Descriptor(
            reads=tuple(t.substitute(bindings) for t in self.reads),
            writes=tuple(t.substitute(bindings) for t in self.writes),
        )

    def union(self, other: "Descriptor") -> "Descriptor":
        return Descriptor(
            reads=_dedup(self.reads + other.reads),
            writes=_dedup(self.writes + other.writes),
        )

    def blocks_read(self) -> FrozenSet[str]:
        return frozenset(t.block for t in self.reads)

    def blocks_written(self) -> FrozenSet[str]:
        return frozenset(t.block for t in self.writes)

    # -- rendering ---------------------------------------------------------------

    def __str__(self) -> str:
        lines = []
        if self.writes:
            lines.append("write: " + "  ".join(str(t) for t in self.writes))
        if self.reads:
            lines.append("read:  " + "  ".join(str(t) for t in self.reads))
        return "\n".join(lines) if lines else "(empty)"


EMPTY_DESCRIPTOR = Descriptor()


def _dedup(triples: Sequence[AccessTriple]) -> Tuple[AccessTriple, ...]:
    seen = []
    for triple in triples:
        if triple not in seen:
            seen.append(triple)
    return tuple(seen)


@dataclass(eq=False)
class _Event:
    """A raw access with its program-order sequence number."""

    seq: int
    mode: str  # "read" | "write"
    triple: AccessTriple


class DescriptorBuilder:
    """Builds descriptors for statement regions of one analysed unit."""

    def __init__(self, analysis: AnalysisResult, include_scalars: bool = True):
        self.analysis = analysis
        self.values = analysis.values
        self.include_scalars = include_scalars
        self.array_names = {
            d.name for d in analysis.unit.decls if d.is_array
        }
        self._decl_patterns: Dict[str, Pattern] = {}
        for decl in analysis.unit.decls:
            if decl.is_array:
                self._decl_patterns[decl.name] = self._whole_pattern(decl)

    # -- public API -----------------------------------------------------------

    def region(
        self,
        stmts: Sequence[ast.Stmt],
        extra_guard: Guard = TRUE_GUARD,
    ) -> Descriptor:
        """Descriptor for a statement region.

        Loops inside the region are promoted; anything defined outside
        stays symbolic.  ``extra_guard`` is conjoined onto every triple
        (used for per-iteration descriptors of guarded loops).
        """
        self._seq = 0
        events: List[_Event] = []
        self._walk_stmts(list(stmts), extra_guard, events, loop_vars=())
        return self._finish(events)

    def of_loop(self, loop: ast.DoLoop) -> Descriptor:
        """Descriptor of a whole loop (induction variable promoted)."""
        return self.region([loop])

    def of_iteration(self, loop: ast.DoLoop) -> Descriptor:
        """Descriptor of a single iteration (induction variable free).

        The ``where`` guard, if any, is attached to every triple, matching
        the paper's Figure 1 example (``<mask[col] <> 0> ...``).
        """
        base = self.region(loop.body)
        if loop.where is None:
            return base
        # The guard applies uniformly to the whole iteration, so it is
        # attached *after* assembly — it must not disable the
        # read-dominated-by-write rule within the iteration.
        guard = guard_from_condition(loop.where, self.values.expr_at)
        return Descriptor(
            reads=tuple(
                AccessTriple(t.block, t.pattern, guard + t.guard, t.approximate)
                for t in base.reads
            ),
            writes=tuple(
                AccessTriple(t.block, t.pattern, guard + t.guard, t.approximate)
                for t in base.writes
            ),
        )

    # -- construction: statements ------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _walk_stmts(
        self,
        stmts: Sequence[ast.Stmt],
        guard: Guard,
        events: List[_Event],
        loop_vars: Tuple[str, ...],
    ) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt, guard, events, loop_vars)

    def _walk_stmt(
        self,
        stmt: ast.Stmt,
        guard: Guard,
        events: List[_Event],
        loop_vars: Tuple[str, ...],
    ) -> None:
        if isinstance(stmt, ast.Assign):
            self._expr_reads(stmt.value, guard, events, loop_vars)
            target = stmt.target
            if isinstance(target, ast.ArrayRef):
                for index in target.indices:
                    self._expr_reads(index, guard, events, loop_vars)
                triple = self._element_triple(target, guard)
                events.append(_Event(self._next_seq(), "write", triple))
            elif self.include_scalars and target.name not in loop_vars:
                events.append(
                    _Event(
                        self._next_seq(),
                        "write",
                        AccessTriple(block=target.name, pattern=(), guard=guard),
                    )
                )
        elif isinstance(stmt, ast.CallStmt):
            self._call_access(
                stmt.name, stmt.args, guard, events, loop_vars, is_stmt=True
            )
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr_reads(stmt.value, guard, events, loop_vars)
        elif isinstance(stmt, ast.If):
            self._expr_reads(stmt.cond, guard, events, loop_vars)
            then_guard = guard + guard_from_condition(
                stmt.cond, self.values.expr_at
            )
            self._walk_stmts(stmt.then_body, then_guard, events, loop_vars)
            else_guard = guard + guard_from_condition(
                stmt.cond, self.values.expr_at, negated=True
            )
            self._walk_stmts(stmt.else_body, else_guard, events, loop_vars)
        elif isinstance(stmt, ast.DoLoop):
            self._loop_access(stmt, guard, events, loop_vars)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected statement {type(stmt).__name__}")

    # -- construction: loops (promotion) ----------------------------------------------

    def _loop_access(
        self,
        loop: ast.DoLoop,
        guard: Guard,
        events: List[_Event],
        loop_vars: Tuple[str, ...],
    ) -> None:
        for rng in loop.ranges:
            self._expr_reads(rng.lo, guard, events, loop_vars)
            self._expr_reads(rng.hi, guard, events, loop_vars)
            if rng.step is not None:
                self._expr_reads(rng.step, guard, events, loop_vars)
        body_guard = guard
        if loop.where is not None:
            self._expr_reads(loop.where, guard, events, loop_vars)
            body_guard = guard + guard_from_condition(
                loop.where, self.values.expr_at
            )
        body_events: List[_Event] = []
        self._walk_stmts(
            loop.body, body_guard, body_events, loop_vars + (loop.var,)
        )
        ranges = [range_from_do(r, None) or None for r in loop.ranges]
        # Resolve symbolic bounds through value propagation where possible.
        resolved: List[Optional[SymRange]] = []
        for rng_ast, rng in zip(loop.ranges, ranges):
            lo = self.values.expr_at(rng_ast.lo)
            hi = self.values.expr_at(rng_ast.hi)
            if lo is not None and hi is not None:
                skip = rng.skip if rng is not None else 1
                resolved.append(SymRange(lo, hi, skip))
            else:
                resolved.append(None)
        for event in body_events:
            for rng in resolved:
                promoted = _promote(event.triple, loop.var, rng)
                events.append(_Event(event.seq, event.mode, promoted))

    # -- construction: expressions --------------------------------------------------

    def _expr_reads(
        self,
        expr: ast.Expr,
        guard: Guard,
        events: List[_Event],
        loop_vars: Tuple[str, ...],
    ) -> None:
        if isinstance(expr, ast.Var):
            if expr.name in self.array_names:
                events.append(
                    _Event(
                        self._next_seq(),
                        "read",
                        self._whole_triple(expr.name, guard),
                    )
                )
            elif self.include_scalars and expr.name not in loop_vars:
                events.append(
                    _Event(
                        self._next_seq(),
                        "read",
                        AccessTriple(block=expr.name, pattern=(), guard=guard),
                    )
                )
            return
        if isinstance(expr, ast.ArrayRef):
            for index in expr.indices:
                self._expr_reads(index, guard, events, loop_vars)
            triple = self._element_triple(expr, guard)
            events.append(_Event(self._next_seq(), "read", triple))
            return
        if isinstance(expr, ast.Call):
            self._call_access(
                expr.name, expr.args, guard, events, loop_vars, is_stmt=False
            )
            return
        for child in expr.children():
            self._expr_reads(child, guard, events, loop_vars)

    def _call_access(
        self,
        name: str,
        args: Sequence[ast.Expr],
        guard: Guard,
        events: List[_Event],
        loop_vars: Tuple[str, ...],
        is_stmt: bool,
    ) -> None:
        info = lookup_intrinsic(name)
        reads_only = info is not None and info.reads_arrays_only
        pure = info is not None and info.pure
        for index, arg in enumerate(args):
            if isinstance(arg, ast.Var) and arg.name in self.array_names:
                events.append(
                    _Event(
                        self._next_seq(),
                        "read",
                        self._whole_triple(arg.name, guard),
                    )
                )
                if not reads_only:
                    events.append(
                        _Event(
                            self._next_seq(),
                            "write",
                            self._whole_triple(arg.name, guard, approximate=True),
                        )
                    )
            else:
                self._expr_reads(arg, guard, events, loop_vars)
                if (
                    is_stmt
                    and not pure
                    and self.include_scalars
                    and isinstance(arg, ast.Var)
                    and arg.name not in loop_vars
                ):
                    events.append(
                        _Event(
                            self._next_seq(),
                            "write",
                            AccessTriple(
                                block=arg.name,
                                pattern=(),
                                guard=guard,
                                approximate=True,
                            ),
                        )
                    )

    # -- triple helpers ---------------------------------------------------------------

    def _element_triple(self, ref: ast.ArrayRef, guard: Guard) -> AccessTriple:
        dims: List[DimPattern] = []
        approximate = False
        decl_pattern = self._decl_patterns.get(ref.name)
        for position, index in enumerate(ref.indices):
            value = self.values.expr_at(index)
            if value is None:
                # Non-affine subscript: the whole dimension, approximately.
                if decl_pattern is not None and position < len(decl_pattern):
                    dims.append(decl_pattern[position])
                else:
                    dims.append(
                        DimPattern(
                            SymRange(
                                SymExpr.constant(1),
                                SymExpr.var(f"{ref.name}.dim{position}"),
                            )
                        )
                    )
                approximate = True
            else:
                dims.append(DimPattern.point(value))
        return AccessTriple(
            block=ref.name,
            pattern=tuple(dims),
            guard=guard,
            approximate=approximate,
        )

    def _whole_triple(
        self, array: str, guard: Guard, approximate: bool = False
    ) -> AccessTriple:
        pattern = self._decl_patterns.get(array)
        return AccessTriple(
            block=array, pattern=pattern, guard=guard, approximate=approximate
        )

    def _whole_pattern(self, decl: ast.Decl) -> Optional[Pattern]:
        dims: List[DimPattern] = []
        for dim in decl.dims:
            lo = expr_from_ast(dim.lo)
            hi = expr_from_ast(dim.hi)
            if lo is None or hi is None:
                return None
            dims.append(DimPattern(SymRange(lo, hi)))
        return tuple(dims)

    # -- assembly -----------------------------------------------------------------------

    def _finish(self, events: List[_Event]) -> Descriptor:
        writes: List[AccessTriple] = []
        reads: List[AccessTriple] = []
        writes_so_far: List[Tuple[int, AccessTriple]] = []
        for event in sorted(events, key=lambda e: e.seq):
            if event.mode == "write":
                writes.append(event.triple)
                writes_so_far.append((event.seq, event.triple))
            else:
                covered = any(
                    seq < event.seq and triple_covered_by(event.triple, w)
                    for seq, w in writes_so_far
                )
                if not covered:
                    reads.append(event.triple)
        return Descriptor(reads=_dedup(reads), writes=_dedup(writes))


# ---------------------------------------------------------------------------
# Loop promotion
# ---------------------------------------------------------------------------


def _promote(
    triple: AccessTriple, var: str, rng: Optional[SymRange]
) -> AccessTriple:
    """Promote ``var`` to its range within one triple.

    ``rng`` of ``None`` means the bounds were unanalysable — everything
    mentioning the variable degrades to an approximate envelope.
    """
    guard = triple.guard
    pattern = triple.pattern
    approximate = triple.approximate

    if pattern is None:
        # Whole-block triple: just drop guards mentioning the variable.
        kept = tuple(p for p in guard if not p.mentions(var))
        if len(kept) != len(guard):
            approximate = True
        return AccessTriple(triple.block, None, kept, approximate)

    # Step 1: convert mask-style guards over `var` into dimension masks on
    # dimensions whose pattern is exactly the point `var`.
    var_expr = SymExpr.var(var)
    new_dims = list(pattern)
    remaining: List = []
    for pred in guard:
        converted = False
        if isinstance(pred, MaskPred) and pred.index == var_expr:
            for position, dim in enumerate(new_dims):
                if (
                    dim.is_point
                    and dim.range.lo == var_expr
                    and dim.mask is None
                ):
                    new_dims[position] = DimPattern(
                        dim.range, Mask.from_pred(pred)
                    )
                    converted = True
                    break
        if not converted:
            remaining.append(pred)

    # Step 2: drop any other guards mentioning the variable (conservative).
    kept_guard = []
    for pred in remaining:
        if pred.mentions(var):
            approximate = True
        else:
            kept_guard.append(pred)

    # Step 3: widen each dimension over the variable's range.
    out_dims: List[DimPattern] = []
    for dim in new_dims:
        widened, exact = _widen_dim(dim, var, rng)
        out_dims.append(widened)
        if not exact:
            approximate = True

    return AccessTriple(
        block=triple.block,
        pattern=tuple(out_dims),
        guard=tuple(kept_guard),
        approximate=approximate,
    )


def _widen_dim(
    dim: DimPattern, var: str, rng: Optional[SymRange]
) -> Tuple[DimPattern, bool]:
    """Widen one dimension over ``var in rng``; returns (pattern, exact)."""
    mask = dim.mask
    mask_exact = True
    if mask is not None and mask.value.mentions(var):
        mask = None
        mask_exact = False

    lo, hi, skip = dim.range.lo, dim.range.hi, dim.range.skip
    lo_coef = lo.coefficient(var)
    hi_coef = hi.coefficient(var)
    if lo_coef == 0 and hi_coef == 0:
        return DimPattern(dim.range, mask), mask_exact

    if rng is None:
        # Unknown bounds: keep the symbolic variable (it stays a free
        # symbol) but flag the triple as approximate.
        return DimPattern(dim.range, mask), False

    if dim.is_point:
        coef = lo_coef
        at_lo = lo.substitute({var: rng.lo})
        at_hi = lo.substitute({var: rng.hi})
        if coef >= 0:
            new_range = SymRange(at_lo, at_hi, abs(coef) * rng.skip or 1)
        else:
            new_range = SymRange(at_hi, at_lo, abs(coef) * rng.skip)
        exact = mask_exact
        return DimPattern(new_range, mask), exact

    # A genuine range depending on the variable: take the envelope.
    new_lo = lo.substitute({var: rng.lo if lo_coef >= 0 else rng.hi})
    new_hi = hi.substitute({var: rng.hi if hi_coef >= 0 else rng.lo})
    return DimPattern(SymRange(new_lo, new_hi, 1), mask), False


# ---------------------------------------------------------------------------
# Loop independence (the paper's iteration test)
# ---------------------------------------------------------------------------


def iteration_descriptor_shifted(
    descriptor: Descriptor, var: str, delta: int
) -> Descriptor:
    """The descriptor of iteration ``var + delta`` (e.g. ``i-1``)."""
    return descriptor.substitute({var: SymExpr.var(var) + delta})


def loop_iterations_independent(
    loop: ast.DoLoop, builder: DescriptorBuilder
) -> bool:
    """The paper's test: iterations are independent if changing the
    induction variable yields a descriptor intersecting the original only
    in their read sets."""
    base = builder.of_iteration(loop)
    fresh = f"{loop.var}'"
    other = base.substitute({loop.var: SymExpr.var(fresh)})
    pairs = frozenset({frozenset({loop.var, fresh})})
    return not descriptors_interfere(base, other, pairs)


def descriptors_interfere(
    a: Descriptor,
    b: Descriptor,
    distinct_pairs: FrozenSet[frozenset] = frozenset(),
) -> bool:
    """Interference (Section 3.2): output-, flow-, or anti-dependency."""
    return (
        _overlap(a.writes, b.writes, distinct_pairs)
        or _overlap(a.writes, b.reads, distinct_pairs)
        or _overlap(a.reads, b.writes, distinct_pairs)
    )


def descriptor_flow_interferes(
    pred: Descriptor,
    succ: Descriptor,
    distinct_pairs: FrozenSet[frozenset] = frozenset(),
) -> bool:
    """Flow interference: ``pred.writes`` meets ``succ.reads``
    (Section 3.3.1: "A successor computation B has a flow interference from
    a predecessor computation A if A_write intersect B_read != 0")."""
    return _overlap(pred.writes, succ.reads, distinct_pairs)


def _overlap(
    xs: Tuple[AccessTriple, ...],
    ys: Tuple[AccessTriple, ...],
    distinct_pairs: FrozenSet[frozenset],
) -> bool:
    for x in xs:
        for y in ys:
            if not triples_disjoint(x, y, distinct_pairs):
                return True
    return False
