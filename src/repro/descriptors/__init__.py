"""Symbolic data descriptors (Section 3.2 of the paper).

The public surface:

* :class:`Descriptor` / :class:`AccessTriple` / :class:`DimPattern` /
  :class:`Mask` — the ``<G> B[P]`` representation,
* :class:`DescriptorBuilder` — builds descriptors for statement regions,
  whole loops, and single iterations of an analysed unit,
* :func:`interfere` / :func:`flow_interfere` — the dependency tests,
* :func:`loop_iterations_independent` — the paper's iteration test.
"""

from .descriptor import (
    Descriptor,
    DescriptorBuilder,
    EMPTY_DESCRIPTOR,
    descriptor_flow_interferes,
    descriptors_interfere,
    iteration_descriptor_shifted,
    loop_iterations_independent,
)
from .guards import (
    AffinePred,
    Guard,
    MaskPred,
    OpaquePred,
    TRUE_GUARD,
    guard_from_condition,
    guards_contradict,
)
from .interference import flow_interfere, independent, interfere
from .pattern import DimPattern, Mask, dim_covers, dims_disjoint, pattern_covers
from .triple import AccessTriple, triple_covered_by, triples_disjoint

__all__ = [
    "Descriptor",
    "DescriptorBuilder",
    "EMPTY_DESCRIPTOR",
    "AccessTriple",
    "DimPattern",
    "Mask",
    "Guard",
    "MaskPred",
    "AffinePred",
    "OpaquePred",
    "TRUE_GUARD",
    "guard_from_condition",
    "guards_contradict",
    "interfere",
    "flow_interfere",
    "independent",
    "descriptors_interfere",
    "descriptor_flow_interferes",
    "iteration_descriptor_shifted",
    "loop_iterations_independent",
    "triples_disjoint",
    "triple_covered_by",
    "dims_disjoint",
    "dim_covers",
    "pattern_covers",
]
