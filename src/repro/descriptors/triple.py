"""Access triples ``<G> B[P]`` (Section 3.2).

"Each triple describes access to a given block of memory and is represented
in the form ``<G> B[P]``.  G is an optional symbolic guard expression; the
access represented by the triple is known not to occur if the guard is
proven false.  B is the memory block accessed.  P, also optional, describes
the pattern of access; if P is not specified, the triple refers to the
entire memory block."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

from ..analysis.symbolic import SymExpr
from .guards import Guard, TRUE_GUARD, guard_mentions, guard_str, guard_substitute, guards_contradict
from .pattern import Pattern, dims_disjoint, pattern_covers


@dataclass(frozen=True)
class AccessTriple:
    """One guarded, patterned access to a memory block.

    ``pattern`` of ``None`` means the entire block (the paper's "if P is
    not specified").  Scalars are blocks with an empty pattern ``()``.
    """

    block: str
    pattern: Optional[Pattern] = None
    guard: Guard = TRUE_GUARD
    #: True when the triple over-approximates the real access (non-affine
    #: subscripts, dropped guards, range envelopes).  Over-approximation is
    #: fine for interference testing but disqualifies a write from
    #: *covering* reads (the live-on-entry rule needs must-write facts).
    approximate: bool = False

    @property
    def whole_block(self) -> bool:
        return self.pattern is None

    @property
    def is_scalar(self) -> bool:
        return self.pattern == ()

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "AccessTriple":
        pattern = None
        if self.pattern is not None:
            pattern = tuple(d.substitute(bindings) for d in self.pattern)
        return AccessTriple(
            block=self.block,
            pattern=pattern,
            guard=guard_substitute(self.guard, bindings),
            approximate=self.approximate,
        )

    def mentions(self, name: str) -> bool:
        if guard_mentions(self.guard, name):
            return True
        if self.pattern:
            for dim in self.pattern:
                if (
                    dim.range.lo.mentions(name)
                    or dim.range.hi.mentions(name)
                    or (dim.mask is not None and dim.mask.value.mentions(name))
                ):
                    return True
        return False

    def __str__(self) -> str:
        text = self.block
        if self.pattern is not None and self.pattern:
            dims = ", ".join(str(d) for d in self.pattern)
            text = f"{self.block}[{dims}]"
        if self.guard:
            return f"< {guard_str(self.guard)} > {text}"
        return text


def triples_disjoint(
    a: AccessTriple,
    b: AccessTriple,
    distinct_pairs: FrozenSet[frozenset] = frozenset(),
) -> bool:
    """True when the two triples provably touch no common location.

    Conservative: any doubt means "not disjoint" ("we compute interference
    conservatively; descriptors interfere unless we can prove otherwise").
    """
    if a.block != b.block:
        return True
    if guards_contradict(a.guard, b.guard):
        return True
    if a.pattern is None or b.pattern is None:
        return False  # whole-block access overlaps anything in the block
    if a.pattern == () or b.pattern == ():
        # Scalar accesses to the same block always overlap.
        return False
    if len(a.pattern) != len(b.pattern):
        return False  # ill-matched ranks: be conservative
    return any(
        dims_disjoint(da, db, distinct_pairs)
        for da, db in zip(a.pattern, b.pattern)
    )


def triple_covered_by(read: AccessTriple, write: AccessTriple) -> bool:
    """True when ``write`` provably covers every location ``read`` touches.

    Requires the write to be unconditional (empty guard) — a guarded write
    may not occur, so it cannot dominate a read.
    """
    if write.guard or write.approximate:
        return False
    if read.block != write.block:
        return False
    return pattern_covers(write.pattern, read.pattern)
