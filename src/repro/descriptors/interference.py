"""Interference predicates over descriptors (Sections 3.2–3.3).

Thin, well-named wrappers over the descriptor machinery, matching the
paper's vocabulary:

* :func:`interfere` — output/flow/anti dependency between two summaries,
* :func:`flow_interfere` — directed flow dependency (writes of the first
  meet reads of the second),
* :func:`interfere_with_set` / :func:`transitive_interfere` style helpers
  live in :mod:`repro.split.classify`, which owns the fixpoint algorithms.
"""

from __future__ import annotations

from typing import FrozenSet

from .descriptor import (
    Descriptor,
    descriptor_flow_interferes,
    descriptors_interfere,
)

NO_FACTS: FrozenSet[frozenset] = frozenset()


def interfere(
    a: Descriptor, b: Descriptor, distinct_pairs: FrozenSet[frozenset] = NO_FACTS
) -> bool:
    """True unless the two descriptors are provably independent.

    Captures all three dependency kinds:
    output (W∩W), flow (W∩R), and anti (R∩W).
    """
    return descriptors_interfere(a, b, distinct_pairs)


def flow_interfere(
    pred: Descriptor,
    succ: Descriptor,
    distinct_pairs: FrozenSet[frozenset] = NO_FACTS,
) -> bool:
    """True when ``succ`` may read something ``pred`` writes.

    Not symmetric — this is the paper's flow interference used to
    subdivide Linked computations.
    """
    return descriptor_flow_interferes(pred, succ, distinct_pairs)


def independent(
    a: Descriptor, b: Descriptor, distinct_pairs: FrozenSet[frozenset] = NO_FACTS
) -> bool:
    """Convenience negation of :func:`interfere`."""
    return not interfere(a, b, distinct_pairs)
