"""Per-dimension access patterns for descriptor triples (Section 3.2).

"Patterns have an expression for each dimension of the memory block,
representing the range of data touched.  Patterns can optionally include a
masking expression to further limit access."  A :class:`DimPattern` is a
symbolic range plus an optional :class:`Mask`; the paper renders a masked
dimension as ``1..10/(miss[*] <> 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from ..analysis.symbolic import (
    SymExpr,
    SymRange,
    compare,
    definitely_disjoint_ranges,
)
from .guards import MaskPred

_NEGATED_OP = {
    "==": "<>",
    "<>": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


@dataclass(frozen=True)
class Mask:
    """A mask restricting a dimension: keep element ``x`` iff
    ``array[x] OP value``.  ``*`` in the paper's rendering stands for the
    current element."""

    array: str
    op: str
    value: SymExpr

    def complementary(self, other: "Mask") -> bool:
        """True when no element can satisfy both masks."""
        if self.array != other.array or self.value != other.value:
            return False
        return _NEGATED_OP[self.op] == other.op

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "Mask":
        return Mask(self.array, self.op, self.value.substitute(bindings))

    @staticmethod
    def from_pred(pred: MaskPred) -> "Mask":
        return Mask(array=pred.array, op=pred.op, value=pred.value)

    def __str__(self) -> str:
        return f"{self.array}[*] {self.op} {self.value}"


@dataclass(frozen=True)
class DimPattern:
    """The data touched along one dimension: a range, optionally masked."""

    range: SymRange
    mask: Optional[Mask] = None

    @staticmethod
    def point(expr: SymExpr) -> "DimPattern":
        return DimPattern(SymRange.single(expr))

    @property
    def is_point(self) -> bool:
        return self.range.is_single

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "DimPattern":
        rng = SymRange(
            self.range.lo.substitute(bindings),
            self.range.hi.substitute(bindings),
            self.range.skip,
        )
        mask = self.mask.substitute(bindings) if self.mask else None
        return DimPattern(rng, mask)

    def __str__(self) -> str:
        if self.mask is None:
            return str(self.range)
        return f"{self.range}/({self.mask})"


#: A full pattern: one DimPattern per array dimension.  ``None`` in a triple
#: means the whole memory block is touched.
Pattern = Tuple[DimPattern, ...]


def dims_disjoint(
    a: DimPattern,
    b: DimPattern,
    distinct_pairs: frozenset = frozenset(),
) -> bool:
    """True when the two dimension patterns provably share no element.

    ``distinct_pairs`` supplies extra facts of the form "name1 != name2"
    (as frozensets of two names), used when testing loop iterations against
    each other (the paper's independence test substitutes a fresh induction
    variable and asks whether the descriptors still intersect).
    """
    if definitely_disjoint_ranges(a.range, b.range):
        return True
    if a.mask is not None and b.mask is not None and a.mask.complementary(b.mask):
        return True
    if distinct_pairs and a.is_point and b.is_point:
        if _points_distinct(a.range.lo, b.range.lo, distinct_pairs):
            return True
    return False


def _points_distinct(
    x: SymExpr, y: SymExpr, distinct_pairs: frozenset
) -> bool:
    """True when ``x != y`` follows from a single known-distinct name pair.

    Handles the shape ``x - y == c*(u - v)`` with ``c != 0`` and the fact
    ``u != v``.
    """
    diff = x - y
    if diff.is_constant:
        return diff.const != 0
    if len(diff.terms) != 2:
        return False
    (n1, c1), (n2, c2) = diff.terms
    if c1 != -c2 or diff.const != 0:
        return False
    return frozenset({n1, n2}) in distinct_pairs


def dim_covers(w: DimPattern, r: DimPattern) -> bool:
    """True when ``w`` provably touches every element ``r`` touches.

    Used for the live-on-entry rule: "reads known to be dominated by writes
    in the write set are not included."
    """
    if w.mask is not None and w.mask != r.mask:
        return False
    if w.range.skip != 1 and w.range != r.range:
        return False
    lo_ok = compare(w.range.lo, r.range.lo)
    hi_ok = compare(r.range.hi, w.range.hi)
    return lo_ok is not None and lo_ok <= 0 and hi_ok is not None and hi_ok <= 0


def pattern_covers(w: Optional[Pattern], r: Optional[Pattern]) -> bool:
    """Whole-pattern containment; ``None`` (entire block) covers anything."""
    if w is None:
        return True
    if r is None:
        return False
    if len(w) != len(r):
        return False
    return all(dim_covers(wd, rd) for wd, rd in zip(w, r))
