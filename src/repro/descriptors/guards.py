"""Structural guard predicates for symbolic data descriptors (Section 3.2).

A descriptor triple carries an optional guard ``<G>``: "the access
represented by the triple is known not to occur if the guard is proven
false".  Guards arise from ``where`` clauses and ``if`` conditions.  We keep
them *structural* (not just canonical text) because the split transformation
needs to

* recognise *mask-style* guards — ``maskarray(index) OP value`` — which are
  converted into per-dimension masks when a loop is promoted into a range
  (the paper's ``q[1..10/(miss[*] <> 1), 1..10]``), and
* prove two guards *complementary* (``mask(i) <> 0`` vs ``mask(i) == 0``),
  which makes the guarded accesses disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple, Union

from ..analysis.assertions import Predicate, predicates_contradict
from ..analysis.symbolic import SymExpr
from ..lang import ast
from ..lang.printer import print_expr

_NEGATED_OP = dict(ast.NEGATED_COMPARISON)


@dataclass(frozen=True)
class MaskPred:
    """A guard of the form ``array(index) OP value``.

    ``index`` and ``value`` are affine symbolic expressions.  This is the
    shape the paper converts into a dimension mask when the indexing
    variable is promoted to a range.
    """

    array: str
    index: SymExpr
    op: str
    value: SymExpr

    def negate(self) -> "MaskPred":
        return MaskPred(self.array, self.index, _NEGATED_OP[self.op], self.value)

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "MaskPred":
        return MaskPred(
            self.array,
            self.index.substitute(bindings),
            self.op,
            self.value.substitute(bindings),
        )

    def mentions(self, name: str) -> bool:
        return self.index.mentions(name) or self.value.mentions(name)

    def __str__(self) -> str:
        return f"{self.array}[{self.index}] {self.op} {self.value}"


@dataclass(frozen=True)
class AffinePred:
    """An affine guard ``expr OP 0`` (wraps the assertion predicate form)."""

    expr: SymExpr
    op: str  # ==, <>, <, <=

    def negate(self) -> "AffinePred":
        inner = Predicate(op=self.op, expr=self.expr).negate()
        return AffinePred(expr=inner.expr, op=inner.op)

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "AffinePred":
        return AffinePred(self.expr.substitute(bindings), self.op)

    def mentions(self, name: str) -> bool:
        return self.expr.mentions(name)

    def to_predicate(self) -> Predicate:
        return Predicate(op=self.op, expr=self.expr)

    def __str__(self) -> str:
        return f"{self.expr} {self.op} 0"


@dataclass(frozen=True)
class OpaquePred:
    """An unanalysable guard, identified by canonical source text."""

    text: str
    truth: bool = True

    def negate(self) -> "OpaquePred":
        return OpaquePred(self.text, not self.truth)

    def substitute(self, bindings: Mapping[str, SymExpr]) -> "OpaquePred":
        return self

    def mentions(self, name: str) -> bool:
        # Conservative: assume the text may mention anything.
        return True

    def __str__(self) -> str:
        return f"[{self.text}]" if self.truth else f"not [{self.text}]"


GuardPred = Union[MaskPred, AffinePred, OpaquePred]
#: A guard: conjunction of predicates.  Empty tuple means "always occurs".
Guard = Tuple[GuardPred, ...]

TRUE_GUARD: Guard = ()


def guard_preds_contradict(a: GuardPred, b: GuardPred) -> bool:
    """True when the two guard predicates provably cannot both hold."""
    if isinstance(a, MaskPred) and isinstance(b, MaskPred):
        if a.array != b.array or a.index != b.index or a.value != b.value:
            return False
        return _NEGATED_OP[a.op] == b.op or _ops_exclusive(a.op, b.op)
    if isinstance(a, AffinePred) and isinstance(b, AffinePred):
        return predicates_contradict(a.to_predicate(), b.to_predicate())
    if isinstance(a, OpaquePred) and isinstance(b, OpaquePred):
        return a.text == b.text and a.truth != b.truth
    return False


def _ops_exclusive(op1: str, op2: str) -> bool:
    """Comparisons on the same operands that exclude each other."""
    exclusive = {("<", ">"), (">", "<"), ("<", "=="), ("==", "<"),
                 (">", "=="), ("==", ">")}
    return (op1, op2) in exclusive


def guards_contradict(a: Guard, b: Guard) -> bool:
    """True when guard ``a`` and guard ``b`` cannot hold simultaneously."""
    return any(
        guard_preds_contradict(p, q) for p in a for q in b
    )


def guard_substitute(guard: Guard, bindings: Mapping[str, SymExpr]) -> Guard:
    return tuple(p.substitute(bindings) for p in guard)


def guard_mentions(guard: Guard, name: str) -> bool:
    return any(p.mentions(name) for p in guard)


def guard_str(guard: Guard) -> str:
    return " and ".join(str(p) for p in guard)


def guard_pred_from_ast(cond: ast.Expr, expr_at) -> GuardPred:
    """Build one structural guard predicate from a condition AST.

    ``expr_at`` maps an AST expression to an affine
    :class:`~repro.analysis.symbolic.SymExpr` or ``None``
    (typically ``ValueInfo.expr_at``).  Falls back to an opaque predicate.
    """
    if isinstance(cond, ast.BinOp) and cond.op in ast.COMPARISON_OPS:
        left_aff = expr_at(cond.left)
        right_aff = expr_at(cond.right)
        if left_aff is not None and right_aff is not None:
            if cond.op in (">", ">="):
                # left > right  ==  right - left < 0 (and likewise >=).
                op = "<" if cond.op == ">" else "<="
                return AffinePred(expr=right_aff - left_aff, op=op)
            return AffinePred(expr=left_aff - right_aff, op=cond.op)
        # mask-style: arrayref OP affine (either orientation).
        mask = _try_mask(cond.left, cond.right, cond.op, expr_at)
        if mask is not None:
            return mask
        mask = _try_mask(cond.right, cond.left, _flip(cond.op), expr_at)
        if mask is not None:
            return mask
    return OpaquePred(text=print_expr(cond))


def _flip(op: str) -> str:
    flips = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "==": "==", "<>": "<>"}
    return flips[op]


def _try_mask(
    array_side: ast.Expr, value_side: ast.Expr, op: str, expr_at
) -> Optional[MaskPred]:
    if not isinstance(array_side, ast.ArrayRef):
        return None
    if len(array_side.indices) != 1:
        return None
    index = expr_at(array_side.indices[0])
    value = expr_at(value_side)
    if index is None or value is None:
        return None
    return MaskPred(array=array_side.name, index=index, op=op, value=value)


def guard_from_condition(cond: ast.Expr, expr_at, negated: bool = False) -> Guard:
    """Build a guard (conjunction) from a condition AST.

    Conjunctions split into separate predicates; disjunctions and other
    shapes collapse into a single (possibly opaque) predicate.  With
    ``negated=True`` the guard for the condition's false branch is built.
    """
    if isinstance(cond, ast.UnOp) and cond.op == "not":
        return guard_from_condition(cond.operand, expr_at, not negated)
    if isinstance(cond, ast.BinOp) and cond.op == "and" and not negated:
        return guard_from_condition(cond.left, expr_at) + guard_from_condition(
            cond.right, expr_at
        )
    if isinstance(cond, ast.BinOp) and cond.op == "or" and negated:
        # not(a or b) == not a and not b.
        return guard_from_condition(
            cond.left, expr_at, True
        ) + guard_from_condition(cond.right, expr_at, True)
    pred = guard_pred_from_ast(cond, expr_at)
    if negated:
        # For affine > / >= shapes guard_pred_from_ast only produces
        # == <> < <=; negate structurally.
        if isinstance(pred, AffinePred):
            return (pred.negate(),)
        if isinstance(pred, MaskPred):
            return (pred.negate(),)
        return (pred.negate(),)
    return (pred,)
