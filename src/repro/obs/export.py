"""Exporting traces: Chrome ``trace_event`` JSON and metrics reports.

:func:`to_chrome_trace` converts an event stream to the Trace Event
Format understood by ``chrome://tracing`` and https://ui.perfetto.dev —
one timeline lane (thread) per simulated processor, duration events for
tasks/chunks/messages, instants for scheduler decisions.

Simulated time is in abstract work units; the exporter maps one work
unit to ``time_scale`` microseconds (default 1000, i.e. 1 work unit
renders as 1ms) so the viewer's zoom levels behave sensibly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .events import (
    CHUNK_ACQUIRE,
    CHUNK_COMPLETE,
    Event,
    MSG_RECV,
    TASK_DISPATCH,
)
from .metrics import MetricsReport, aggregate

#: Chrome trace category per event-kind prefix (used for viewer filtering).
_CATEGORY = {
    "chunk": "sched",
    "task": "compute",
    "msg": "comm",
    "epoch": "protocol",
    "taper": "decision",
    "alloc": "decision",
    "pipeline": "pipeline",
    "granularity": "decision",
    "op": "op",
    "fault": "fault",
    "checkpoint": "durability",
    "run": "durability",
    "shm": "data-plane",
}

#: Kinds rendered as duration ("X") events on a processor lane.
_DURATION_KINDS = {TASK_DISPATCH, CHUNK_ACQUIRE, MSG_RECV}


def _category(kind: str) -> str:
    return _CATEGORY.get(kind.split(".", 1)[0], "misc")


def _args(event: Event) -> Dict[str, Any]:
    args: Dict[str, Any] = dict(event.attrs)
    if event.op:
        args["op"] = event.op
    return args


def to_chrome_trace(
    events: Sequence[Event],
    processors: Optional[int] = None,
    time_scale: float = 1000.0,
    time_unit: str = "work units",
) -> Dict[str, Any]:
    """Build a Chrome Trace Event Format document (JSON-object form).

    For wall-clock streams (the mp backend) pass ``time_scale=1e6,
    time_unit="seconds"`` so one second of real time renders as one
    second in the viewer.
    """
    lanes = processors or 0
    for event in events:
        if event.proc + 1 > lanes:
            lanes = event.proc + 1
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro simulated machine"},
        }
    ]
    for proc in range(lanes):
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 0,
                "tid": proc,
                "args": {"name": "proc %d" % proc},
            }
        )
        # Keep lanes ordered by processor index in the viewer.
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": 0,
                "tid": proc,
                "args": {"sort_index": proc},
            }
        )
    for event in events:
        tid = event.proc if event.proc >= 0 else lanes  # runtime lane
        base: Dict[str, Any] = {
            "name": event.op or event.kind,
            "cat": _category(event.kind),
            "pid": 0,
            "tid": tid,
            "ts": event.time * time_scale,
            "args": _args(event),
        }
        if event.kind in _DURATION_KINDS or (
            event.kind == CHUNK_COMPLETE and event.dur > 0
        ):
            base["ph"] = "X"
            base["dur"] = event.dur * time_scale
            if event.kind != TASK_DISPATCH:
                base["name"] = event.kind
        else:
            base["ph"] = "i"
            base["s"] = "t" if event.proc >= 0 else "g"
            base["name"] = event.kind
        trace_events.append(base)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "time_unit": time_unit,
            "time_scale_us_per_unit": time_scale,
        },
    }


def write_chrome_trace(
    events: Sequence[Event],
    path: str,
    processors: Optional[int] = None,
    time_scale: float = 1000.0,
    time_unit: str = "work units",
) -> None:
    document = to_chrome_trace(
        events,
        processors=processors,
        time_scale=time_scale,
        time_unit=time_unit,
    )
    with open(path, "w") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")


def write_metrics_json(report: MetricsReport, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def metrics_summary(
    report: MetricsReport, time_unit: str = "work units"
) -> str:
    """A short human-readable digest of a metrics report.

    ``time_unit`` only labels/formats the output; pass ``"seconds"`` for
    wall-clock (mp backend) streams so sub-second spans stay readable.
    """
    breakdown = report.breakdown()
    time_fmt = "%.4g" if time_unit == "seconds" else "%.1f"
    lines = [
        ("makespan            " + time_fmt + " %s")
        % (report.makespan, time_unit),
        "processors          %d" % report.processors,
        "utilization         %.1f%%" % (100.0 * report.utilization),
        "load imbalance      %.2f (max-mean)/mean" % report.load_imbalance,
        "breakdown           compute %.1f%% | sched %.1f%% | comm %.1f%% | idle %.1f%%"
        % (
            100.0 * breakdown["compute"],
            100.0 * breakdown["sched"],
            100.0 * breakdown["comm"],
            100.0 * breakdown["idle"],
        ),
        "messages            %d (%.0f bytes)" % (report.messages, report.bytes_moved),
        "epochs              %d" % report.epochs,
        "chunk reassignments %d (%d tasks moved)"
        % (report.reassignments, report.tasks_moved),
    ]
    if report.workers_died or report.chunk_retries or report.faults_injected:
        lines.append(
            "faults              %d workers died | %d chunk retries | "
            "%d injected"
            % (
                report.workers_died,
                report.chunk_retries,
                report.faults_injected,
            )
        )
    if (
        report.checkpoint_writes
        or report.chunks_speculated
        or report.duplicates_dropped
        or report.runs_cancelled
    ):
        lines.append(
            "durability          %d checkpoint writes | %d speculated | "
            "%d duplicates dropped%s"
            % (
                report.checkpoint_writes,
                report.chunks_speculated,
                report.duplicates_dropped,
                " | CANCELLED" if report.runs_cancelled else "",
            )
        )
    if report.shm_ops_mapped or report.shm_attaches:
        lines.append(
            "data plane          %d ops shm-mapped (%.0f bytes) | "
            "%d worker attaches"
            % (report.shm_ops_mapped, report.shm_bytes, report.shm_attaches)
        )
    if report.per_op:
        lines.append("operations:")
        number = ".4g" if time_unit == "seconds" else ".1f"
        op_fmt = (
            "  %-16s %6d tasks  %5d chunks  work %10"
            + number
            + "  span %9"
            + number
        )
        for name, om in sorted(report.per_op.items()):
            lines.append(
                op_fmt % (name, om.tasks, om.chunks, om.work, om.span)
            )
    return "\n".join(lines)
