"""ASCII per-processor timeline rendering for terminal debugging.

Buckets the traced run into ``width`` time columns and draws one row per
simulated processor, each cell showing the dominant activity in that
bucket::

    t=0.0                                                     t=412.7
    p000 |################ss##########c###########..........| 78%
    p001 |##############ss############################......| 86%
         # compute   s sched   c comm   . idle

The dominant-category rule keeps thin overheads visible: a bucket is
labelled with whichever of compute/sched/comm has the largest share of
its occupied time, and idle only when nothing ran at all.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .events import CHUNK_ACQUIRE, Event, MSG_RECV, TASK_DISPATCH

_GLYPH = {"compute": "#", "sched": "s", "comm": "c", "idle": "."}

#: event kind -> accounting category
_KIND_CATEGORY = {
    TASK_DISPATCH: "compute",
    CHUNK_ACQUIRE: "sched",
    MSG_RECV: "comm",
}


def _overlap(start: float, end: float, lo: float, hi: float) -> float:
    return max(0.0, min(end, hi) - max(start, lo))


def render_timeline(
    events: Sequence[Event],
    processors: Optional[int] = None,
    width: int = 72,
) -> str:
    """Render the event stream as an ASCII per-processor timeline."""
    lanes = processors or 0
    makespan = 0.0
    for event in events:
        if event.proc + 1 > lanes:
            lanes = event.proc + 1
        if event.proc >= 0 and event.end > makespan:
            makespan = event.end
    if lanes == 0 or makespan <= 0:
        return "(no processor events)"
    width = max(width, 8)
    # Per-lane interval lists by category.
    intervals: List[List[Tuple[float, float, str]]] = [[] for _ in range(lanes)]
    for event in events:
        category = _KIND_CATEGORY.get(event.kind)
        if category is None or event.proc < 0 or event.dur <= 0:
            continue
        intervals[event.proc].append((event.time, event.end, category))

    bucket = makespan / width
    label_width = len(str(lanes - 1))
    rows: List[str] = []
    header = "t=0.0".ljust(label_width + 2 + width // 2)
    header += ("t=%.1f" % makespan).rjust(label_width + width - len(header) + 2)
    rows.append(header)
    for proc in range(lanes):
        shares = [
            {"compute": 0.0, "sched": 0.0, "comm": 0.0} for _ in range(width)
        ]
        busy = 0.0
        for start, end, category in intervals[proc]:
            busy += end - start if category == "compute" else 0.0
            first = min(width - 1, int(start / bucket))
            last = min(width - 1, int(end / bucket))
            for column in range(first, last + 1):
                lo = column * bucket
                hi = lo + bucket
                shares[column][category] += _overlap(start, end, lo, hi)
        cells = []
        for column in range(width):
            share = shares[column]
            total = share["compute"] + share["sched"] + share["comm"]
            if total <= 0:
                cells.append(_GLYPH["idle"])
            else:
                dominant = max(share, key=share.get)
                cells.append(_GLYPH[dominant])
        utilization = 100.0 * busy / makespan
        rows.append(
            "p%0*d |%s| %3.0f%%" % (label_width, proc, "".join(cells), utilization)
        )
    rows.append(
        " " * (label_width + 1)
        + "  # compute   s sched   c comm   . idle"
    )
    return "\n".join(rows)
