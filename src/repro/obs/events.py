"""Typed runtime event stream (the `repro.obs` foundation).

Every interesting decision the simulated runtime makes — a chunk acquired
or completed, a task dispatched, a message sent, a TAPER epoch advancing,
a chunk re-assigned to a thief, an Eq. 1 allocation decision, a pipeline
stage — is recorded as one :class:`Event` on a :class:`Tracer`.

Design rules:

* **Zero overhead when disabled.**  Instrumented code paths take an
  optional ``tracer`` that defaults to ``None``; hot loops hoist the
  ``tracer is not None`` test out of the loop or pay a single pointer
  comparison per event site.  No event objects are built when tracing is
  off.
* **Deterministic.**  Events are appended in simulation order and carry
  only simulated time; the same workload and seed produce a byte-identical
  stream (see :meth:`Tracer.to_jsonl`).
* **Self-contained.**  This module imports nothing from the runtime, so
  the runtime can import it freely.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

# ---------------------------------------------------------------------------
# Event kinds
# ---------------------------------------------------------------------------

#: A processor acquired a chunk (one scheduling event).  ``dur`` carries the
#: scheduling overhead paid (dispatch + amortised epoch share).
CHUNK_ACQUIRE = "chunk.acquire"
#: A processor finished the executed portion of a chunk claim.
CHUNK_COMPLETE = "chunk.complete"
#: The root re-assigned the tail of a claim to a faster processor.
CHUNK_REASSIGN = "chunk.reassign"
#: One task executed.  ``dur`` is the task's compute cost.
TASK_DISPATCH = "task.dispatch"
#: Point-to-point message injected (steal transfers, pipeline batches).
MSG_SEND = "msg.send"
#: Point-to-point message delivered.  ``dur`` is the transfer time.
MSG_RECV = "msg.recv"
#: The distributed-TAPER global epoch advanced (root saw p tokens).
EPOCH_ADVANCE = "epoch.advance"
#: One token-gather + broadcast round on the binary tree.
TOKEN_ROUND = "epoch.token_round"
#: TAPER chose a chunk size (attrs carry beta, the cost-function scale...).
TAPER_DECISION = "taper.decision"
#: The Eq. 1 balancer fixed a processor split (attrs carry the estimates).
ALLOC_DECIDE = "alloc.decide"
#: One pipeline stage executed (attrs: stage, iteration, share).
PIPELINE_STAGE = "pipeline.stage"
#: Communication granularity chosen for a pipelined pair.
GRANULARITY_DECIDE = "granularity.decide"
#: A parallel operation entered / left the running set.
OP_BEGIN = "op.begin"
OP_END = "op.end"
#: A worker process was detected dead (attrs: in-flight chunk size).
WORKER_DIED = "fault.worker_died"
#: A chunk failed (kernel exception) and was re-enqueued with backoff
#: (attrs: attempt, backoff, tasks; quarantined tasks carry
#: ``quarantined``).
CHUNK_RETRIED = "chunk.retry"
#: The fault-injection harness fired a planned fault
#: (attrs: fault kind, target worker).
FAULT_INJECTED = "fault.injected"
#: A straggler chunk was duplicated onto an idle worker
#: (attrs: tasks, victim = the slow worker, elapsed, expected).
CHUNK_SPECULATE = "chunk.speculate"
#: A completed task's result arrived after another copy already
#: delivered it; the duplicate was dropped, not double-counted
#: (attrs: tasks = duplicate count, speculative).
CHUNK_DUPLICATE_DROPPED = "chunk.duplicate_dropped"
#: A whole TAPER chunk executed as one vectorized ``Kernel.batch_fn``
#: call instead of per-task Python calls (attrs: tasks_per_call = tasks
#: delivered by the one call, zero_copy = results written in place in
#: the shm result buffer).  ``dur`` is the chunk's measured wall time.
CHUNK_BATCHED = "chunk.batched"
#: One chunk record appended to the durable journal
#: (attrs: tasks, synced = whether this append fsynced).
CHECKPOINT_WRITE = "checkpoint.write"
#: The journal was replayed at startup (attrs: tasks, chunks, dropped).
RUN_RESUMED = "run.resumed"
#: The run was cancelled gracefully — SIGINT/SIGTERM or the wall-clock
#: limit — after a drain-checkpoint-exit sequence
#: (attrs: reason, remaining = tasks left undone).
RUN_CANCELLED = "run.cancelled"
#: One op's payloads + result buffer were laid out in shared-memory
#: segments at session setup (attrs: mode = array/scalar/tuple,
#: payload_bytes, result_bytes, segment).
SHM_MAP = "shm.map"
#: A worker attached zero-copy views of an op's shm segments
#: (attrs: bytes; ``proc`` is the attaching worker).
SHM_ATTACH = "shm.attach"
#: -- streaming lane (StreamOp ingestion) ----------------------------------
#: One stream page admitted or settled (attrs: page = sequence number,
#: base = first global task index, tasks; settle events additionally
#: carry ``dur`` = admission-to-settle latency and ``value``).
STREAM_PAGE = "stream.page"
#: Stream admission paused or resumed (attrs: state = "pause"/"resume",
#: reason = "window"/"watermark", waiting = tasks pending + in flight,
#: pages = unsettled pages).  Edge-triggered: one event per transition.
STREAM_BACKPRESSURE = "stream.backpressure"
#: -- job lifecycle lane (the `repro serve` daemon) ------------------------
#: A job arrived over the socket (attrs: job, target, priority).
JOB_SUBMITTED = "job.submitted"
#: Admission control accepted the job into the bounded queue
#: (attrs: job, queued = jobs ahead of it).
JOB_ADMITTED = "job.admitted"
#: The job left the queue and its session began executing
#: (attrs: job, workers = its initial grant).
JOB_STARTED = "job.started"
#: The job finished cleanly (attrs: job, value_total, makespan).
JOB_DONE = "job.done"
#: The job's session raised (attrs: job, error).
JOB_FAILED = "job.failed"
#: The job was cancelled — client request or daemon drain — through the
#: graceful cancel path (attrs: job, reason, resume_dir).
JOB_CANCELLED = "job.cancelled"
#: -- elastic pool lane (resident WorkerPool self-healing) -----------------
#: A dead pool slot was respawned (attrs: slot, attempt = deaths in the
#: rolling window, backoff = seconds waited before this attempt).
POOL_RESPAWN = "pool.respawn"
#: A dormant slot was started because the serve load is compute-bound
#: (attrs: slot, width = live + pending workers after the grow).
POOL_GROW = "pool.grow"
#: An idle worker was stopped cooperatively after ``idle_timeout``
#: (attrs: slot, idle = seconds it sat free, width).
POOL_SHRINK = "pool.shrink"
#: A crash-looping slot tripped the circuit breaker and will not be
#: respawned (attrs: slot, deaths, window).
POOL_QUARANTINE = "pool.quarantine"
#: A cached shm payload segment was evicted past the cache byte budget
#: (attrs: fingerprint = key prefix, bytes, cache_bytes = total after).
SHM_EVICT = "shm.evict"
#: -- multi-host lane (the `dist` backend) ---------------------------------
#: A host agent completed its handshake and joined the run
#: (attrs: host = --hosts index, addr, workers, width = global workers
#: after the join; ``proc`` is the host's first global worker id).
HOST_JOIN = "host.join"
#: A host agent was lost mid-run — connection dropped or heartbeat
#: expired (attrs: host, addr, workers = workers it took down,
#: reclaimed = in-flight tasks requeued, width = surviving workers).
HOST_LOST = "host.lost"

ALL_KINDS = (
    CHUNK_ACQUIRE,
    CHUNK_COMPLETE,
    CHUNK_REASSIGN,
    TASK_DISPATCH,
    MSG_SEND,
    MSG_RECV,
    EPOCH_ADVANCE,
    TOKEN_ROUND,
    TAPER_DECISION,
    ALLOC_DECIDE,
    PIPELINE_STAGE,
    GRANULARITY_DECIDE,
    OP_BEGIN,
    OP_END,
    WORKER_DIED,
    CHUNK_RETRIED,
    FAULT_INJECTED,
    CHUNK_SPECULATE,
    CHUNK_DUPLICATE_DROPPED,
    CHUNK_BATCHED,
    CHECKPOINT_WRITE,
    RUN_RESUMED,
    RUN_CANCELLED,
    SHM_MAP,
    SHM_ATTACH,
    STREAM_PAGE,
    STREAM_BACKPRESSURE,
    JOB_SUBMITTED,
    JOB_ADMITTED,
    JOB_STARTED,
    JOB_DONE,
    JOB_FAILED,
    JOB_CANCELLED,
    POOL_RESPAWN,
    POOL_GROW,
    POOL_SHRINK,
    POOL_QUARANTINE,
    SHM_EVICT,
    HOST_JOIN,
    HOST_LOST,
)


@dataclass
class Event:
    """One runtime event on the simulated clock.

    ``time`` is the event's start in work units (already shifted by the
    tracer's origin), ``dur`` its extent (0 for instants), ``proc`` the
    simulated processor (-1 when not processor-specific), ``op`` the
    parallel-operation label, and ``attrs`` kind-specific details.
    """

    kind: str
    time: float
    dur: float = 0.0
    proc: int = -1
    op: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.time + self.dur

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "time": self.time,
            "dur": self.dur,
            "proc": self.proc,
            "op": self.op,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """Collects the event stream of one simulated run.

    ``origin`` shifts emitted times onto a shared timeline: the simulators
    each start their local clock at zero, so a driver that runs several
    operations back to back calls :meth:`advance` with each makespan to
    lay them end to end.  ``now`` is a scratch clock that instrumented
    run loops keep updated so that deep components (the TAPER policy, the
    allocator) can stamp events without threading clocks through every
    signature.
    """

    __slots__ = ("events", "origin", "now")

    def __init__(self) -> None:
        self.events: List[Event] = []
        self.origin: float = 0.0
        self.now: float = 0.0

    def emit(
        self,
        kind: str,
        time: float,
        dur: float = 0.0,
        proc: int = -1,
        op: str = "",
        **attrs: Any,
    ) -> None:
        self.events.append(
            Event(kind, self.origin + time, dur, proc, op, attrs)
        )

    def advance(self, dt: float) -> None:
        """Shift the origin forward by ``dt`` (one completed sub-run)."""
        self.origin += dt

    def __len__(self) -> int:
        return len(self.events)

    def makespan(self) -> float:
        """Latest event end seen so far."""
        if not self.events:
            return 0.0
        return max(event.end for event in self.events)

    def by_kind(self, kind: str) -> List[Event]:
        return [event for event in self.events if event.kind == kind]

    def to_jsonl(self) -> str:
        """Canonical one-event-per-line serialisation.

        Deterministic byte-for-byte for a deterministic simulation: keys
        are sorted, separators fixed, floats rendered by ``repr``.
        """
        return events_to_jsonl(self.events)


def events_to_jsonl(events: Iterable[Event]) -> str:
    lines = [
        json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
        for event in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def events_from_jsonl(text: str) -> List[Event]:
    events: List[Event] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        raw = json.loads(line)
        events.append(
            Event(
                kind=raw["kind"],
                time=raw["time"],
                dur=raw.get("dur", 0.0),
                proc=raw.get("proc", -1),
                op=raw.get("op", ""),
                attrs=raw.get("attrs", {}),
            )
        )
    return events
