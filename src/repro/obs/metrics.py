"""Aggregating the event stream into runtime metrics.

Turns the raw :mod:`repro.obs.events` stream into the quantities the
paper argues about: per-processor utilization, load imbalance, the
overhead breakdown (compute vs scheduling vs communication vs idle),
message/byte counts, epoch counts, and per-operation summaries.

Time accounting: every timed event carries its duration in one of three
cost categories —

* **compute** — :data:`~repro.obs.events.TASK_DISPATCH` durations,
* **sched**   — :data:`~repro.obs.events.CHUNK_ACQUIRE` durations (chunk
  dispatch + amortised epoch-tree share) plus per-task dispatch overhead
  (the ``overhead`` attr of task events),
* **comm**    — :data:`~repro.obs.events.MSG_RECV` durations (transfer
  time charged to the receiving processor).

Idle is what remains of ``makespan`` on each processor lane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .events import (
    CHECKPOINT_WRITE,
    CHUNK_ACQUIRE,
    CHUNK_BATCHED,
    CHUNK_DUPLICATE_DROPPED,
    CHUNK_REASSIGN,
    CHUNK_RETRIED,
    CHUNK_SPECULATE,
    EPOCH_ADVANCE,
    Event,
    FAULT_INJECTED,
    MSG_RECV,
    MSG_SEND,
    POOL_GROW,
    POOL_QUARANTINE,
    POOL_RESPAWN,
    POOL_SHRINK,
    RUN_CANCELLED,
    SHM_ATTACH,
    SHM_MAP,
    STREAM_BACKPRESSURE,
    STREAM_PAGE,
    TASK_DISPATCH,
    WORKER_DIED,
)


@dataclass
class ProcMetrics:
    """One simulated processor's accounting."""

    proc: int
    compute: float = 0.0
    sched: float = 0.0
    comm: float = 0.0
    tasks: int = 0
    chunks: int = 0
    tasks_stolen: int = 0  # tasks this processor took from victims
    tasks_lost: int = 0  # tasks re-assigned away from this processor
    finish: float = 0.0  # last event end on this lane

    def idle(self, makespan: float) -> float:
        return max(0.0, makespan - self.compute - self.sched - self.comm)

    def utilization(self, makespan: float) -> float:
        if makespan <= 0:
            return 1.0
        return self.compute / makespan

    def to_dict(self, makespan: float) -> Dict[str, Any]:
        return {
            "proc": self.proc,
            "compute": self.compute,
            "sched": self.sched,
            "comm": self.comm,
            "idle": self.idle(makespan),
            "utilization": self.utilization(makespan),
            "tasks": self.tasks,
            "chunks": self.chunks,
            "tasks_stolen": self.tasks_stolen,
            "tasks_lost": self.tasks_lost,
            "finish": self.finish,
        }


@dataclass
class OpMetrics:
    """Per-parallel-operation accounting (grouped by event ``op`` label)."""

    op: str
    work: float = 0.0
    tasks: int = 0
    chunks: int = 0
    start: float = math.inf
    end: float = 0.0

    @property
    def span(self) -> float:
        if self.end <= self.start:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "work": self.work,
            "tasks": self.tasks,
            "chunks": self.chunks,
            "start": 0.0 if math.isinf(self.start) else self.start,
            "end": self.end,
            "span": self.span,
        }


@dataclass
class MetricsReport:
    """The aggregated view of one traced run."""

    makespan: float
    processors: int
    per_proc: List[ProcMetrics]
    per_op: Dict[str, OpMetrics]
    messages: int
    bytes_moved: float
    epochs: int
    reassignments: int
    tasks_moved: int
    #: Fault-recovery accounting (mp backend; zero on clean/sim runs).
    workers_died: int = 0
    chunk_retries: int = 0
    faults_injected: int = 0
    #: Durability accounting (mp backend with checkpoint/speculation).
    chunks_speculated: int = 0
    duplicates_dropped: int = 0
    checkpoint_writes: int = 0
    runs_cancelled: int = 0
    #: Data-plane accounting (mp backend with the shm data plane).
    shm_ops_mapped: int = 0
    shm_attaches: int = 0
    shm_bytes: float = 0.0
    #: Batched-kernel accounting (mp backend with ``batching`` enabled).
    batched_chunks: int = 0
    batched_tasks: int = 0
    #: Streaming-ingestion accounting (mp backend with StreamOps).
    stream_pages_admitted: int = 0
    stream_pages_settled: int = 0
    stream_tasks: int = 0
    stream_backpressure_events: int = 0
    #: p99 admission-to-settle page latency (0 when no pages settled).
    stream_page_latency_p99: float = 0.0
    #: Elastic-pool accounting (resident WorkerPool self-healing).
    pool_respawns: int = 0
    pool_grows: int = 0
    pool_shrinks: int = 0
    pool_quarantines: int = 0

    # -- derived ------------------------------------------------------------

    @property
    def stream_tasks_per_second(self) -> float:
        """Sustained streaming throughput over the run's makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.stream_tasks / self.makespan

    @property
    def total_compute(self) -> float:
        return sum(m.compute for m in self.per_proc)

    @property
    def total_sched(self) -> float:
        return sum(m.sched for m in self.per_proc)

    @property
    def total_comm(self) -> float:
        return sum(m.comm for m in self.per_proc)

    @property
    def total_idle(self) -> float:
        return sum(m.idle(self.makespan) for m in self.per_proc)

    @property
    def utilization(self) -> float:
        """Mean fraction of processor-time spent computing."""
        if self.makespan <= 0 or self.processors <= 0:
            return 1.0
        return self.total_compute / (self.processors * self.makespan)

    @property
    def load_imbalance(self) -> float:
        """(max - mean) / mean of per-processor compute time.

        0 means perfectly balanced; 1 means the most loaded processor did
        twice the mean — i.e. makespan has ~2x headroom over ideal.
        """
        busies = [m.compute for m in self.per_proc]
        if not busies:
            return 0.0
        mean = sum(busies) / len(busies)
        if mean <= 0:
            return 0.0
        return (max(busies) - mean) / mean

    def breakdown(self) -> Dict[str, float]:
        """Fractions of total processor-time by category (sums to ~1)."""
        total = self.processors * self.makespan
        if total <= 0:
            return {"compute": 1.0, "sched": 0.0, "comm": 0.0, "idle": 0.0}
        return {
            "compute": self.total_compute / total,
            "sched": self.total_sched / total,
            "comm": self.total_comm / total,
            "idle": self.total_idle / total,
        }

    def chunks_histogram(self) -> Dict[int, int]:
        """chunks-acquired count keyed by processor index."""
        return {m.proc: m.chunks for m in self.per_proc}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "makespan": self.makespan,
            "processors": self.processors,
            "utilization": self.utilization,
            "load_imbalance": self.load_imbalance,
            "breakdown": self.breakdown(),
            "totals": {
                "compute": self.total_compute,
                "sched": self.total_sched,
                "comm": self.total_comm,
                "idle": self.total_idle,
            },
            "messages": self.messages,
            "bytes_moved": self.bytes_moved,
            "epochs": self.epochs,
            "reassignments": self.reassignments,
            "tasks_moved": self.tasks_moved,
            "workers_died": self.workers_died,
            "chunk_retries": self.chunk_retries,
            "faults_injected": self.faults_injected,
            "chunks_speculated": self.chunks_speculated,
            "duplicates_dropped": self.duplicates_dropped,
            "checkpoint_writes": self.checkpoint_writes,
            "runs_cancelled": self.runs_cancelled,
            "shm_ops_mapped": self.shm_ops_mapped,
            "shm_attaches": self.shm_attaches,
            "shm_bytes": self.shm_bytes,
            "batched_chunks": self.batched_chunks,
            "batched_tasks": self.batched_tasks,
            "stream_pages_admitted": self.stream_pages_admitted,
            "stream_pages_settled": self.stream_pages_settled,
            "stream_tasks": self.stream_tasks,
            "stream_backpressure_events": self.stream_backpressure_events,
            "stream_page_latency_p99": self.stream_page_latency_p99,
            "stream_tasks_per_second": self.stream_tasks_per_second,
            "pool_respawns": self.pool_respawns,
            "pool_grows": self.pool_grows,
            "pool_shrinks": self.pool_shrinks,
            "pool_quarantines": self.pool_quarantines,
            "chunks_per_processor": {
                str(proc): count
                for proc, count in sorted(self.chunks_histogram().items())
            },
            "per_processor": [
                m.to_dict(self.makespan) for m in self.per_proc
            ],
            "per_op": {
                name: om.to_dict() for name, om in sorted(self.per_op.items())
            },
        }


def aggregate(
    events: Sequence[Event], processors: Optional[int] = None
) -> MetricsReport:
    """Fold an event stream into a :class:`MetricsReport`.

    ``processors`` fixes the lane count (so fully idle processors still
    appear); by default it is inferred as ``max(proc) + 1`` over the
    stream.
    """
    max_proc = -1
    for event in events:
        if event.proc > max_proc:
            max_proc = event.proc
    lanes = max(processors or 0, max_proc + 1)
    per_proc = [ProcMetrics(proc=index) for index in range(lanes)]
    per_op: Dict[str, OpMetrics] = {}
    messages = 0
    bytes_moved = 0.0
    epochs = 0
    reassignments = 0
    tasks_moved = 0
    workers_died = 0
    chunk_retries = 0
    faults_injected = 0
    chunks_speculated = 0
    duplicates_dropped = 0
    checkpoint_writes = 0
    runs_cancelled = 0
    shm_ops_mapped = 0
    shm_attaches = 0
    shm_bytes = 0.0
    batched_chunks = 0
    batched_tasks = 0
    stream_pages_admitted = 0
    stream_pages_settled = 0
    stream_tasks = 0
    stream_backpressure_events = 0
    pool_respawns = 0
    pool_grows = 0
    pool_shrinks = 0
    pool_quarantines = 0
    stream_settle_latencies: List[float] = []
    # Makespan from processor-lane events when any exist (machine-level
    # instants like token rounds carry amortised durations that would
    # overshoot the real finish); summary-only streams (pipeline stages,
    # graph executor) fall back to all events.
    lane_makespan = 0.0
    any_makespan = 0.0

    for event in events:
        end = event.end
        if end > any_makespan:
            any_makespan = end
        if event.proc >= 0 and end > lane_makespan:
            lane_makespan = end
        pm = per_proc[event.proc] if 0 <= event.proc < lanes else None
        if pm is not None and end > pm.finish:
            pm.finish = end
        if event.kind == TASK_DISPATCH:
            if pm is not None:
                pm.compute += event.dur
                pm.sched += event.attrs.get("overhead", 0.0)
                pm.tasks += 1
            if event.op:
                om = per_op.get(event.op)
                if om is None:
                    om = per_op[event.op] = OpMetrics(op=event.op)
                om.work += event.dur
                om.tasks += 1
                if event.time < om.start:
                    om.start = event.time
                if end > om.end:
                    om.end = end
        elif event.kind == CHUNK_ACQUIRE:
            if pm is not None:
                pm.sched += event.dur
                pm.chunks += 1
            if event.op:
                om = per_op.get(event.op)
                if om is None:
                    om = per_op[event.op] = OpMetrics(op=event.op)
                om.chunks += 1
        elif event.kind == MSG_RECV:
            if pm is not None:
                pm.comm += event.dur
        elif event.kind == MSG_SEND:
            messages += 1
            bytes_moved += event.attrs.get("bytes", 0.0)
        elif event.kind == EPOCH_ADVANCE:
            epochs += 1
        elif event.kind == CHUNK_REASSIGN:
            reassignments += 1
            moved = event.attrs.get("tasks", 0)
            tasks_moved += moved
            if pm is not None:
                pm.tasks_stolen += moved
            victim = event.attrs.get("victim", -1)
            if 0 <= victim < lanes:
                per_proc[victim].tasks_lost += moved
        elif event.kind == WORKER_DIED:
            workers_died += 1
        elif event.kind == CHUNK_RETRIED:
            chunk_retries += 1
        elif event.kind == FAULT_INJECTED:
            faults_injected += 1
        elif event.kind == CHUNK_SPECULATE:
            chunks_speculated += 1
        elif event.kind == CHUNK_DUPLICATE_DROPPED:
            duplicates_dropped += event.attrs.get("tasks", 1)
        elif event.kind == CHECKPOINT_WRITE:
            checkpoint_writes += 1
        elif event.kind == RUN_CANCELLED:
            runs_cancelled += 1
        elif event.kind == SHM_MAP:
            shm_ops_mapped += 1
            shm_bytes += event.attrs.get("payload_bytes", 0.0)
            shm_bytes += event.attrs.get("result_bytes", 0.0)
        elif event.kind == SHM_ATTACH:
            shm_attaches += 1
        elif event.kind == CHUNK_BATCHED:
            batched_chunks += 1
            batched_tasks += event.attrs.get("tasks_per_call", 0)
        elif event.kind == STREAM_PAGE:
            if event.attrs.get("state") == "settle":
                stream_pages_settled += 1
                stream_tasks += event.attrs.get("tasks", 0)
                stream_settle_latencies.append(event.dur)
            else:
                stream_pages_admitted += 1
        elif event.kind == STREAM_BACKPRESSURE:
            if event.attrs.get("state") == "pause":
                stream_backpressure_events += 1
        elif event.kind == POOL_RESPAWN:
            pool_respawns += 1
        elif event.kind == POOL_GROW:
            pool_grows += 1
        elif event.kind == POOL_SHRINK:
            pool_shrinks += 1
        elif event.kind == POOL_QUARANTINE:
            pool_quarantines += 1

    p99 = 0.0
    if stream_settle_latencies:
        ordered = sorted(stream_settle_latencies)
        p99 = ordered[
            min(len(ordered) - 1, int(math.ceil(0.99 * len(ordered))) - 1)
        ]
    makespan = lane_makespan if lane_makespan > 0 else any_makespan
    return MetricsReport(
        makespan=makespan,
        processors=lanes,
        per_proc=per_proc,
        per_op=per_op,
        messages=messages,
        bytes_moved=bytes_moved,
        epochs=epochs,
        reassignments=reassignments,
        tasks_moved=tasks_moved,
        workers_died=workers_died,
        chunk_retries=chunk_retries,
        faults_injected=faults_injected,
        chunks_speculated=chunks_speculated,
        duplicates_dropped=duplicates_dropped,
        checkpoint_writes=checkpoint_writes,
        runs_cancelled=runs_cancelled,
        shm_ops_mapped=shm_ops_mapped,
        shm_attaches=shm_attaches,
        shm_bytes=shm_bytes,
        batched_chunks=batched_chunks,
        batched_tasks=batched_tasks,
        stream_pages_admitted=stream_pages_admitted,
        stream_pages_settled=stream_pages_settled,
        stream_tasks=stream_tasks,
        stream_backpressure_events=stream_backpressure_events,
        stream_page_latency_p99=p99,
        pool_respawns=pool_respawns,
        pool_grows=pool_grows,
        pool_shrinks=pool_shrinks,
        pool_quarantines=pool_quarantines,
    )
