"""repro.obs — structured tracing, metrics, and timeline observability.

The simulated runtime (``repro.runtime``) takes an optional
:class:`Tracer`; when one is supplied every scheduling decision becomes a
typed :class:`Event`:

* chunk acquired / completed / re-assigned (distributed TAPER),
* per-task dispatch,
* message send / receive (steal transfers),
* TAPER epoch advance + token rounds, chunk-size decisions,
* Eq. 1 allocation decisions with their finishing-time estimates,
* pipeline stage spans and granularity choices,
* operation begin / end.

The stream aggregates into :class:`MetricsReport` (:func:`aggregate`),
exports to Chrome ``trace_event`` JSON (:func:`write_chrome_trace`, load
in ``chrome://tracing`` or Perfetto), and renders as an ASCII timeline
(:func:`render_timeline`).  ``python -m repro trace`` drives all three.

Tracing is strictly observational — the same run with and without a
tracer produces identical simulated results — and costs nothing when
disabled (instrumented paths take ``tracer=None`` by default).
"""

from .events import (
    ALLOC_DECIDE,
    ALL_KINDS,
    CHUNK_ACQUIRE,
    CHUNK_COMPLETE,
    CHUNK_REASSIGN,
    CHUNK_RETRIED,
    EPOCH_ADVANCE,
    Event,
    FAULT_INJECTED,
    GRANULARITY_DECIDE,
    MSG_RECV,
    MSG_SEND,
    OP_BEGIN,
    OP_END,
    PIPELINE_STAGE,
    STREAM_BACKPRESSURE,
    STREAM_PAGE,
    TAPER_DECISION,
    TASK_DISPATCH,
    TOKEN_ROUND,
    Tracer,
    WORKER_DIED,
    events_from_jsonl,
    events_to_jsonl,
)
from .export import (
    metrics_summary,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)
from .metrics import MetricsReport, OpMetrics, ProcMetrics, aggregate
from .timeline import render_timeline

__all__ = [
    "Tracer",
    "Event",
    "ALL_KINDS",
    "CHUNK_ACQUIRE",
    "CHUNK_COMPLETE",
    "CHUNK_REASSIGN",
    "TASK_DISPATCH",
    "MSG_SEND",
    "MSG_RECV",
    "EPOCH_ADVANCE",
    "TOKEN_ROUND",
    "TAPER_DECISION",
    "ALLOC_DECIDE",
    "PIPELINE_STAGE",
    "GRANULARITY_DECIDE",
    "OP_BEGIN",
    "OP_END",
    "WORKER_DIED",
    "CHUNK_RETRIED",
    "FAULT_INJECTED",
    "STREAM_PAGE",
    "STREAM_BACKPRESSURE",
    "events_to_jsonl",
    "events_from_jsonl",
    "aggregate",
    "MetricsReport",
    "ProcMetrics",
    "OpMetrics",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_metrics_json",
    "metrics_summary",
    "render_timeline",
]
