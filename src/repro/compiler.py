"""The end-to-end compiler driver.

Mirrors the paper's toolchain: parse the (MiniF-flavoured) FORTRAN input,
run the Section 3.1 symbolic analysis, apply split where interacting
primitive computations allow it, attempt pipelining on guarded loops, and
emit the three output forms of Section 3.4 — the Delirium coordination
graph, the transformed source sections, and the data-size annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .analysis import AnalysisResult, analyze_unit
from .delirium import (
    DataflowGraph,
    GraphAnnotations,
    annotate_graph,
    dataflow_of,
    emit,
    pipeline_into_graph,
    split_into_graph,
)
from .descriptors import DescriptorBuilder, interfere
from .lang import ast, parse, print_stmts
from .split import (
    PipelineResult,
    ReadLinkedHeuristic,
    SplitContext,
    SplitResult,
    decompose,
    pipeline_loop,
    split_computation,
)


@dataclass
class AppliedSplit:
    """A split the driver applied: primitive ``target_index`` supplied the
    descriptor; ``source_index`` was split into C_I/C_D/C_M."""

    target_index: int
    source_index: int
    result: SplitResult


@dataclass
class AppliedPipeline:
    loop_index: int
    result: PipelineResult


@dataclass
class CompiledProgram:
    """Everything the compiler produces for one program unit."""

    unit: ast.Unit
    analysis: AnalysisResult
    graph: DataflowGraph
    annotations: GraphAnnotations
    delirium_text: str
    splits: List[AppliedSplit] = field(default_factory=list)
    pipelines: List[AppliedPipeline] = field(default_factory=list)

    def transformed_sections(self) -> Dict[str, str]:
        """The FORTRAN sections, by operator name (Section 3.4's second
        output form)."""
        sections: Dict[str, str] = {}
        for node in self.graph.nodes:
            if node.stmts:
                sections[node.name] = print_stmts(node.stmts)
        return sections

    def report(self) -> str:
        lines = [
            f"unit {self.unit.name}: {len(self.graph.nodes)} operators, "
            f"{len(self.graph.edges)} edges"
        ]
        for applied in self.splits:
            lines.append(
                f"  split primitive {applied.source_index} against "
                f"primitive {applied.target_index}"
            )
            lines.append("    " + applied.result.report.summary().replace("\n", "\n    "))
        for applied in self.pipelines:
            status = "ok" if applied.result.succeeded else "no independent part"
            lines.append(f"  pipelined loop {applied.loop_index}: {status}")
        return "\n".join(lines)


def compile_unit(
    unit: ast.Unit,
    apply_splits: bool = True,
    apply_pipelining: bool = True,
    heuristic: Optional[ReadLinkedHeuristic] = None,
) -> CompiledProgram:
    """Compile one program unit through the full pipeline."""
    analysis = analyze_unit(unit)
    context = SplitContext(unit)
    primitives = decompose(unit.body, context)
    graph, graph_primitives = dataflow_of(unit, SplitContext(unit))
    splits: List[AppliedSplit] = []
    pipelines: List[AppliedPipeline] = []

    if apply_splits:
        # For each interfering (earlier, later) primitive pair, try to
        # split the later computation against the earlier's descriptor.
        already_split = set()
        for later_index in range(len(primitives)):
            if later_index in already_split:
                continue
            later = primitives[later_index]
            for earlier_index in range(later_index):
                earlier = primitives[earlier_index]
                if not interfere(earlier.descriptor, later.descriptor):
                    continue
                result = split_computation(
                    later.stmts,
                    earlier.descriptor,
                    unit,
                    context=context,
                    heuristic=heuristic,
                )
                if result.is_trivial:
                    continue
                splits.append(
                    AppliedSplit(
                        target_index=earlier_index,
                        source_index=later_index,
                        result=result,
                    )
                )
                split_into_graph(
                    graph,
                    graph.nodes[earlier_index],
                    result,
                    context,
                    base_name=f"op{later_index}",
                )
                already_split.add(later_index)
                break

    if apply_pipelining:
        from .descriptors import loop_iterations_independent

        builder = DescriptorBuilder(analysis)
        for index, primitive in enumerate(primitives):
            loop = primitive.loop
            if loop is None:
                continue
            if loop_iterations_independent(loop, builder):
                continue  # already fully parallel; nothing to pipeline
            result = pipeline_loop(loop, unit, depth=1, context=context)
            if result.succeeded:
                pipelines.append(AppliedPipeline(loop_index=index, result=result))
                pipeline_into_graph(
                    graph, result, context, loop_id=index, base_name=f"loop{index}"
                )

    annotations = annotate_graph(graph, unit)
    return CompiledProgram(
        unit=unit,
        analysis=analysis,
        graph=graph,
        annotations=annotations,
        delirium_text=emit(graph),
        splits=splits,
        pipelines=pipelines,
    )


def compile_source(
    source: str,
    apply_splits: bool = True,
    apply_pipelining: bool = True,
) -> List[CompiledProgram]:
    """Compile every unit in a MiniF source file."""
    file = parse(source)
    return [
        compile_unit(unit, apply_splits, apply_pipelining)
        for unit in file.units
    ]
