"""Pipelining via split (Section 3.3.2).

"To pipeline a loop with split, first the descriptor for one iteration of
the loop is computed.  If the induction variable is i, D_{i-1}, the
descriptor for iteration i-1, is computed.  Then the loop body is split
using D_{i-1}; the resulting independent computation does not interfere
with iteration i-1.  As iteration i is computed, the next iteration's
independent computation can be executed concurrently.  ...  If deeper
pipelining is desired, the descriptor for iteration i-2 can be computed,
etc."

Iteration-local temporaries (blocks fully defined before use within one
iteration — exactly those absent from the iteration descriptor's read set)
are privatised: the runtime gives each iteration its own instance, so they
impose no cross-iteration dependence.  This matches the paper's Figure 3,
where ``result`` becomes the per-iteration ``result1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..analysis.symbolic import SymExpr
from ..descriptors import Descriptor
from ..lang import ast
from .context import SplitContext
from .heuristics import ReadLinkedHeuristic
from .transform import SplitReport, SplitResult, split_computation


@dataclass
class PipelineResult:
    """The pipelined decomposition of one loop.

    Per iteration ``i`` of the original loop:

    * ``independent`` (A_I) may start as soon as iteration ``i``'s *inputs*
      exist — concurrently with iterations ``i-1 .. i-depth``;
    * ``dependent`` (A_D) must wait for those previous iterations;
    * ``merge`` (A_M) combines the two and performs the displaced writes.
    """

    loop: ast.DoLoop
    depth: int
    independent: List[ast.Stmt]
    dependent: List[ast.Stmt]
    merge: List[ast.Stmt]
    privatized: List[str]
    prev_descriptor: Descriptor
    context: SplitContext
    report: SplitReport

    @property
    def succeeded(self) -> bool:
        return bool(self.independent)


def pipeline_loop(
    loop: ast.DoLoop,
    unit: ast.Unit,
    depth: int = 1,
    context: Optional[SplitContext] = None,
    heuristic: Optional[ReadLinkedHeuristic] = None,
    explicit_merge: bool = True,
) -> PipelineResult:
    """Pipeline ``loop`` by splitting its body against iterations
    ``i-1 .. i-depth``."""
    if depth < 1:
        raise ValueError("pipeline depth must be at least 1")
    if context is None:
        context = SplitContext(unit)
    fragment = context.builder_for([loop])
    root = fragment.body[0]
    iteration = fragment.builder.of_iteration(root)

    # Privatise iteration-local temporaries: written but not live-on-entry.
    read_blocks = iteration.blocks_read()
    write_blocks = iteration.blocks_written()
    privatized = sorted(write_blocks - read_blocks)
    carried = Descriptor(
        reads=tuple(t for t in iteration.reads if t.block not in privatized),
        writes=tuple(t for t in iteration.writes if t.block not in privatized),
    )

    prev = Descriptor()
    var = loop.var
    for k in range(1, depth + 1):
        shifted = carried.substitute({var: SymExpr.var(var) - k})
        prev = prev.union(shifted)

    inner = split_computation(
        loop.body,
        prev,
        unit,
        context=context,
        heuristic=heuristic,
        explicit_merge=explicit_merge,
    )
    return PipelineResult(
        loop=loop,
        depth=depth,
        independent=inner.independent,
        dependent=inner.dependent,
        merge=inner.merge,
        privatized=privatized,
        prev_descriptor=prev,
        context=context,
        report=inner.report,
    )
