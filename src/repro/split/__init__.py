"""The split transformation (Section 3.3 of the paper).

* :func:`split_computation` — C × D → (C_I, C_D, C_M),
* :func:`pipeline_loop` — pipelining via split against iteration i-1,
* :func:`classify` / :func:`subdivide_linked` — the Bound/Linked/Free and
  NeedsBound/GenerateLinked/ReadLinked categorisations,
* :func:`try_split_loop` — loop iteration splitting,
* :class:`ReadLinkedHeuristic` — the movement heuristic.
"""

from .classify import (
    Classification,
    classify,
    transitive_flow_down,
    transitive_flow_up,
    transitive_interfere,
)
from .context import SplitContext, clone_stmts
from .heuristics import ReadLinkedHeuristic, estimated_weight, static_op_count
from .linked import LinkedSubdivision, subdivide_linked, suppliers_of
from .loop_split import (
    LoopSplit,
    MaskCandidate,
    MultiPointCandidate,
    PointCandidate,
    find_reductions,
    restriction_candidates,
    symexpr_to_ast,
    try_split_loop,
)
from .pipeline import PipelineResult, pipeline_loop
from .primitives import BLOCK, CALL, COND, LOOP, Primitive, decompose
from .source_transforms import fuse_loops, interchange_loops
from .transform import SplitReport, SplitResult, split_computation

__all__ = [
    "split_computation",
    "SplitResult",
    "SplitReport",
    "pipeline_loop",
    "PipelineResult",
    "classify",
    "Classification",
    "transitive_interfere",
    "transitive_flow_up",
    "transitive_flow_down",
    "subdivide_linked",
    "LinkedSubdivision",
    "suppliers_of",
    "try_split_loop",
    "LoopSplit",
    "find_reductions",
    "restriction_candidates",
    "PointCandidate",
    "MaskCandidate",
    "MultiPointCandidate",
    "symexpr_to_ast",
    "decompose",
    "Primitive",
    "BLOCK",
    "LOOP",
    "CALL",
    "COND",
    "SplitContext",
    "clone_stmts",
    "ReadLinkedHeuristic",
    "static_op_count",
    "estimated_weight",
    "fuse_loops",
    "interchange_loops",
]
