"""The split transformation driver (Section 3.3.1).

``split_computation(C, D)`` converts a computation ``C`` into three
computations:

* ``C_I`` — sub-computations that provably do not interfere with the
  computation summarised by descriptor ``D`` (they may run concurrently
  with it),
* ``C_D`` — the rest of ``C``, except sub-computations that rely on values
  now computed in ``C_I``,
* ``C_M`` — the merge: replicated-accumulator reductions, explicit array
  merges, and any displaced post-processing code.

The driver composes the pieces implemented in the sibling modules:
decomposition into primitives, Bound/Linked/Free classification, loop
iteration splitting, the Linked subdivision, and the ReadLinked movement
heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..descriptors import Descriptor
from ..lang import ast
from .classify import Classification, classify
from .context import SplitContext, clone_stmts
from .heuristics import ReadLinkedHeuristic
from .linked import LinkedSubdivision, subdivide_linked, suppliers_of
from .loop_split import LoopSplit, try_split_loop
from .primitives import LOOP, Primitive, decompose


@dataclass
class SplitReport:
    """Diagnostics: what the transformation did and why."""

    classification: Optional[Classification] = None
    linked_subdivision: Optional[LinkedSubdivision] = None
    loop_splits: List[Tuple[Primitive, LoopSplit]] = field(default_factory=list)
    moved_read_linked: List[Primitive] = field(default_factory=list)
    replicated: List[Primitive] = field(default_factory=list)
    displaced_to_merge: List[Primitive] = field(default_factory=list)

    def summary(self) -> str:
        lines = []
        if self.classification is not None:
            lines.append(
                "bound=%d linked=%d free=%d"
                % (
                    len(self.classification.bound),
                    len(self.classification.linked),
                    len(self.classification.free),
                )
            )
        for primitive, loop_split in self.loop_splits:
            lines.append(
                f"split loop primitive {primitive.index} on "
                f"{loop_split.level_var}: {loop_split.restriction}"
            )
        if self.moved_read_linked:
            lines.append(
                "moved ReadLinked: "
                + ", ".join(str(p.index) for p in self.moved_read_linked)
            )
        if self.displaced_to_merge:
            lines.append(
                "displaced to merge: "
                + ", ".join(str(p.index) for p in self.displaced_to_merge)
            )
        return "\n".join(lines)


@dataclass
class SplitResult:
    """The three output computations, in executable order."""

    independent: List[ast.Stmt]
    dependent: List[ast.Stmt]
    merge: List[ast.Stmt]
    context: SplitContext
    report: SplitReport

    @property
    def is_trivial(self) -> bool:
        """True when nothing could be made independent."""
        return not self.independent


def split_computation(
    stmts: Sequence[ast.Stmt],
    target: Descriptor,
    unit: ast.Unit,
    context: Optional[SplitContext] = None,
    heuristic: Optional[ReadLinkedHeuristic] = None,
    explicit_merge: bool = True,
    no_decompose: bool = False,
) -> SplitResult:
    """Apply split to computation ``stmts`` against descriptor ``target``.

    ``unit`` supplies declarations; pass an existing ``context`` to share
    fresh-name state across several applications (e.g. pipelining).
    """
    if context is None:
        context = SplitContext(unit)
    if heuristic is None:
        heuristic = ReadLinkedHeuristic()
    report = SplitReport()

    working = clone_stmts(stmts)
    primitives = decompose(working, context, no_decompose=no_decompose)
    classification = classify(primitives, target)
    report.classification = classification

    # -- loop iteration splitting on Bound loops --------------------------------
    merge_stmts: List[ast.Stmt] = []
    replacement: Dict[Primitive, List[Primitive]] = {}
    for primitive in classification.bound:
        if primitive.kind != LOOP:
            continue
        loop_split = try_split_loop(
            primitive.loop, target, context, explicit_merge=explicit_merge
        )
        if loop_split is None:
            continue
        report.loop_splits.append((primitive, loop_split))
        merge_stmts.extend(loop_split.merge)
        pieces: List[Primitive] = []
        for piece_stmts in (loop_split.dependent, loop_split.independent):
            pieces.append(
                Primitive(
                    index=primitive.index,
                    kind=LOOP if len(piece_stmts) == 1 else "block",
                    stmts=piece_stmts,
                    descriptor=context.descriptor_of(piece_stmts),
                )
            )
        replacement[primitive] = pieces

    if replacement:
        rebuilt: List[Primitive] = []
        for primitive in primitives:
            rebuilt.extend(replacement.get(primitive, [primitive]))
        for index, primitive in enumerate(rebuilt):
            primitive.index = index
        primitives = rebuilt
        classification = classify(primitives, target)
        report.classification = classification

    # -- subdivide Linked and decide ReadLinked moves -------------------------------
    subdivision = subdivide_linked(
        classification.linked, classification.bound
    )
    report.linked_subdivision = subdivision

    independent_set: List[Primitive] = list(classification.free)
    dependent_pool: List[Primitive] = (
        list(classification.bound)
        + list(subdivision.needs_bound)
        + list(subdivision.generate_linked)
    )
    replicate_into_independent: List[Primitive] = []

    movable_pool = (
        list(classification.free)
        + list(classification.linked)
    )
    for candidate in list(subdivision.read_linked):
        providers = suppliers_of(candidate, movable_pool)
        if any(p in classification.bound for p in providers):
            dependent_pool.append(candidate)
            continue
        to_replicate = [p for p in providers if p not in independent_set]
        if heuristic.should_move(candidate, to_replicate):
            independent_set.append(candidate)
            report.moved_read_linked.append(candidate)
            for provider in to_replicate:
                if provider not in independent_set:
                    replicate_into_independent.append(provider)
                    report.replicated.append(provider)
        else:
            dependent_pool.append(candidate)

    # -- displace CD members that rely on C_I values into C_M ------------------------
    # "C_D holds the rest of C, except for those sub-computations that rely
    # on values now computed in C_I."  Merge statements participate in the
    # flow (C_I writes a replica, the merge copies it, later code reads the
    # merged block), so they seed the displacement frontier too.
    from ..descriptors import flow_interfere

    producer_prims = independent_set + replicate_into_independent
    # Frontier entries carry the program-order index of their producer; a
    # C_D member is displaced only by producers that *precede* it (a later
    # producer corresponds to an anti-dependence, which the preserved C_D
    # ordering already honours).
    frontier: List[Tuple[int, Descriptor]] = [
        (p.index, p.descriptor) for p in producer_prims
    ]
    if merge_stmts:
        merge_index = min(
            (prim.index for prim, _ in report.loop_splits), default=0
        )
        frontier.append((merge_index, context.descriptor_of(merge_stmts)))
    displaced: List[Primitive] = []
    remaining = [p for p in dependent_pool]
    changed = True
    while changed:
        changed = False
        for primitive in list(remaining):
            if any(
                index < primitive.index
                and flow_interfere(descriptor, primitive.descriptor)
                for index, descriptor in frontier
            ):
                remaining.remove(primitive)
                displaced.append(primitive)
                frontier.append((primitive.index, primitive.descriptor))
                changed = True
    report.displaced_to_merge = displaced

    # -- emit, preserving original program order --------------------------------------
    def emit(primitive_list: List[Primitive]) -> List[ast.Stmt]:
        seen: List[Primitive] = []
        for primitive in primitive_list:
            if primitive not in seen:
                seen.append(primitive)
        ordered = sorted(seen, key=lambda p: p.index)
        return [stmt for primitive in ordered for stmt in primitive.stmts]

    # Replicated providers appear in C_I as *clones*: the same computation
    # may also run in C_D for its original consumers.
    replica_stmts: List[Tuple[int, List[ast.Stmt]]] = [
        (p.index, clone_stmts(p.stmts))
        for p in replicate_into_independent
        if p not in independent_set
    ]
    independent_pairs = [
        (p.index, p.stmts)
        for p in sorted(set(independent_set), key=lambda p: p.index)
    ] + replica_stmts
    independent_pairs.sort(key=lambda pair: pair[0])
    independent_stmts = [s for _, group in independent_pairs for s in group]
    dependent_stmts = emit(remaining)
    merge_out = list(merge_stmts) + emit(displaced)

    return SplitResult(
        independent=independent_stmts,
        dependent=dependent_stmts,
        merge=merge_out,
        context=context,
        report=report,
    )
