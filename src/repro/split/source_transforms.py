"""Companion source-to-source transformations (Section 3, intro).

"Our compilation environment combines split with source-to-source
transformations like loop fusion [12] and loop interchange [2] to expose
additional concurrency."

Both transformations are *verification-driven* like the rest of the
system: legality is established with symbolic data descriptors rather
than syntactic pattern matching.

* :func:`fuse_loops` — merge two adjacent loops with identical iteration
  spaces into one, when no fused-iteration dependence is violated;
* :func:`interchange_loops` — swap a perfect 2-deep nest's loops, when
  iterations are independent (so any execution order is legal).
"""

from __future__ import annotations

import copy
from typing import Optional

from ..analysis.symbolic import SymExpr, range_from_do
from ..descriptors import (
    Descriptor,
    descriptor_flow_interferes,
    descriptors_interfere,
    loop_iterations_independent,
)
from ..lang import ast
from .context import SplitContext


def _same_iteration_space(a: ast.DoLoop, b: ast.DoLoop) -> bool:
    """True when the two headers provably iterate identically."""
    if len(a.ranges) != len(b.ranges):
        return False
    for ra, rb in zip(a.ranges, b.ranges):
        sa = range_from_do(ra)
        sb = range_from_do(rb)
        if sa is None or sb is None:
            return False
        if sa != sb:
            return False
    # Guards must match textually (conservative).
    from ..lang.printer import print_expr

    ga = print_expr(a.where) if a.where is not None else None
    gb = print_expr(b.where) if b.where is not None else None
    return ga == gb


def fuse_loops(
    first: ast.DoLoop,
    second: ast.DoLoop,
    context: SplitContext,
) -> Optional[ast.DoLoop]:
    """Fuse two adjacent loops into one, if legal.

    Legality: identical iteration spaces, and iteration ``i`` of the
    *second* loop must not depend on iterations ``j != i`` of the first —
    checked by testing the first loop's iteration descriptor (with a
    renamed induction variable) against the second's.  The fused loop
    runs the second body immediately after the first within each
    iteration, so same-iteration flow is fine; *cross*-iteration overlap
    is what fusion would break.
    """
    if not _same_iteration_space(first, second):
        return None
    builder = context.builder_for([first, second])
    first_analyzed, second_analyzed = builder.body
    d_first = builder.builder.of_iteration(first_analyzed)
    d_second = builder.builder.of_iteration(second_analyzed)
    # Rename the second loop's induction variable onto the first's so the
    # descriptors speak about the same iteration.
    if second.var != first.var:
        d_second = d_second.substitute(
            {second.var: SymExpr.var(first.var)}
        )
    # Cross-iteration check: iteration i of `second` vs iteration i' != i
    # of `first` must not interfere.
    fresh = f"{first.var}'"
    d_first_other = d_first.substitute({first.var: SymExpr.var(fresh)})
    pairs = frozenset({frozenset({first.var, fresh})})
    if descriptors_interfere(d_second, d_first_other, pairs):
        return None

    fused = copy.deepcopy(first)
    second_copy = copy.deepcopy(second)
    if second.var != first.var:
        from .loop_split import rename_scalar

        rename_scalar(second_copy.body, second.var, first.var)
    fused.body = fused.body + second_copy.body
    return fused


def interchange_loops(nest: ast.DoLoop, context: SplitContext) -> Optional[ast.DoLoop]:
    """Interchange a perfect 2-deep nest, if legal.

    Legality (conservative): the body must be a single inner loop, both
    levels single-range without guards, and *all* iteration pairs of the
    whole nest independent — then any execution order is valid and the
    interchange is trivially legal.
    """
    if len(nest.body) != 1 or not isinstance(nest.body[0], ast.DoLoop):
        return None
    inner = nest.body[0]
    if nest.where is not None or inner.where is not None:
        return None
    if len(nest.ranges) != 1 or len(inner.ranges) != 1:
        return None
    builder = context.builder_for([nest])
    root = builder.body[0]
    if not loop_iterations_independent(root, builder.builder):
        return None
    inner_analyzed = root.body[0]
    if not loop_iterations_independent(inner_analyzed, builder.builder):
        return None
    # Inner bounds must not depend on the outer variable (rectangular).
    inner_lo = range_from_do(inner.ranges[0])
    if inner_lo is None:
        return None
    if inner_lo.lo.mentions(nest.var) or inner_lo.hi.mentions(nest.var):
        return None

    new_outer = ast.DoLoop(
        var=inner.var,
        ranges=[copy.deepcopy(inner.ranges[0])],
        body=[
            ast.DoLoop(
                var=nest.var,
                ranges=[copy.deepcopy(nest.ranges[0])],
                body=copy.deepcopy(inner.body),
            )
        ],
    )
    return new_outer
