"""Subdivision of Linked computations (Section 3.3.1).

"NeedsBound — Linked computations with a transitive flow interference from
Bound.  GenerateLinked — Linked computations from which Bound or NeedsBound
has a transitive flow interference.  ReadLinked — Linked computations which
are neither."

Implemented exactly as the paper's pseudocode::

    Unrestricted = Linked
    NeedsBound = transitive_flow_up(Unrestricted, Bound)
    GenerateLinked = transitive_flow_down(Unrestricted, Bound + NeedsBound)
    ReadLinked = Unrestricted
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence

from ..descriptors import flow_interfere
from .classify import NO_FACTS, transitive_flow_down, transitive_flow_up
from .primitives import Primitive


@dataclass
class LinkedSubdivision:
    """The three Linked sub-categories."""

    needs_bound: List[Primitive] = field(default_factory=list)
    generate_linked: List[Primitive] = field(default_factory=list)
    read_linked: List[Primitive] = field(default_factory=list)


def subdivide_linked(
    linked: Sequence[Primitive],
    bound: Sequence[Primitive],
    distinct_pairs: FrozenSet[frozenset] = NO_FACTS,
) -> LinkedSubdivision:
    """Split the Linked set into NeedsBound / GenerateLinked / ReadLinked."""
    unrestricted = list(linked)
    needs_bound = transitive_flow_up(unrestricted, bound, distinct_pairs)
    generate_linked = transitive_flow_down(
        unrestricted, list(bound) + needs_bound, distinct_pairs
    )
    return LinkedSubdivision(
        needs_bound=needs_bound,
        generate_linked=generate_linked,
        read_linked=unrestricted,
    )


def suppliers_of(
    primitive: Primitive,
    candidates: Sequence[Primitive],
    distinct_pairs: FrozenSet[frozenset] = NO_FACTS,
) -> List[Primitive]:
    """Computations among ``candidates`` from which ``primitive`` has a
    transitive flow interference.

    These are the computations that must accompany a ReadLinked member when
    it is moved into the independent set ("every computation s from which r
    has a transitive flow interference must also be put in that set").
    Only earlier computations (by index) can supply values.
    """
    result: List[Primitive] = []
    frontier = [primitive]
    remaining = [
        c for c in candidates if c is not primitive and c.index < primitive.index
    ]
    while frontier:
        new_frontier: List[Primitive] = []
        for candidate in list(remaining):
            if any(
                flow_interfere(
                    candidate.descriptor, consumer.descriptor, distinct_pairs
                )
                for consumer in frontier
            ):
                remaining.remove(candidate)
                result.append(candidate)
                new_frontier.append(candidate)
        frontier = new_frontier
    return sorted(result, key=lambda p: p.index)
