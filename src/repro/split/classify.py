"""Interference classification of primitive computations (Section 3.3.1).

Implements the paper's algorithm verbatim::

    Bound = MaybeFree = {}
    for each c in C
        if interfere(c, D)  Bound += {c}
        else                MaybeFree += {c}
    Linked = transitive_interfere(MaybeFree, Bound)
    Free = MaybeFree

with ``transitive_interfere`` as the fixpoint that repeatedly moves members
of the candidate set that interfere with the growing frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Sequence

from ..descriptors import Descriptor, flow_interfere, interfere
from .primitives import Primitive

NO_FACTS: FrozenSet[frozenset] = frozenset()


@dataclass
class Classification:
    """The three memory-usage categories of Section 3.3.1."""

    bound: List[Primitive] = field(default_factory=list)
    linked: List[Primitive] = field(default_factory=list)
    free: List[Primitive] = field(default_factory=list)

    def category_of(self, primitive: Primitive) -> str:
        if primitive in self.bound:
            return "bound"
        if primitive in self.linked:
            return "linked"
        if primitive in self.free:
            return "free"
        raise KeyError(f"{primitive!r} not classified")


def classify(
    primitives: Sequence[Primitive],
    target: Descriptor,
    distinct_pairs: FrozenSet[frozenset] = NO_FACTS,
) -> Classification:
    """Assign each primitive to Bound, Linked, or Free w.r.t. ``target``."""
    bound: List[Primitive] = []
    maybe_free: List[Primitive] = []
    for primitive in primitives:
        if interfere(primitive.descriptor, target, distinct_pairs):
            bound.append(primitive)
        else:
            maybe_free.append(primitive)
    linked = transitive_interfere(maybe_free, bound, distinct_pairs)
    return Classification(bound=bound, linked=linked, free=maybe_free)


def transitive_interfere(
    initial: List[Primitive],
    target: Sequence[Primitive],
    distinct_pairs: FrozenSet[frozenset] = NO_FACTS,
) -> List[Primitive]:
    """The paper's ``transitive_interfere`` fixpoint.

    Returns the members of ``initial`` that transitively interfere with
    ``target`` *using* ``initial`` as intermediaries, and removes them from
    ``initial`` (mutating it, exactly like the pseudocode).
    """
    return _transitive(
        initial,
        target,
        lambda c, t: interfere(c.descriptor, t.descriptor, distinct_pairs),
    )


def transitive_flow_up(
    initial: List[Primitive],
    target: Sequence[Primitive],
    distinct_pairs: FrozenSet[frozenset] = NO_FACTS,
) -> List[Primitive]:
    """Members of ``initial`` with a transitive flow interference *from*
    ``target`` (they consume values the target produces).  Mutates
    ``initial`` like the paper's pseudocode.

    Flow is directional in *program order*: a write that happens after a
    read is an anti-dependence, not a flow, so only earlier producers
    count.
    """
    return _transitive(
        initial,
        target,
        lambda c, t: t.index < c.index
        and flow_interfere(t.descriptor, c.descriptor, distinct_pairs),
    )


def transitive_flow_down(
    initial: List[Primitive],
    target: Sequence[Primitive],
    distinct_pairs: FrozenSet[frozenset] = NO_FACTS,
) -> List[Primitive]:
    """Members of ``initial`` from which ``target`` has a transitive flow
    interference (they produce values the target consumes).  Mutates
    ``initial``.  Program-order directional, like
    :func:`transitive_flow_up`."""
    return _transitive(
        initial,
        target,
        lambda c, t: c.index < t.index
        and flow_interfere(c.descriptor, t.descriptor, distinct_pairs),
    )


def _transitive(
    initial: List[Primitive],
    target: Sequence[Primitive],
    related: Callable[[Primitive, Primitive], bool],
) -> List[Primitive]:
    result: List[Primitive] = []
    test_set: List[Primitive] = list(target)
    while test_set:
        new_members: List[Primitive] = []
        for candidate in list(initial):
            if any(related(candidate, t) for t in test_set):
                initial.remove(candidate)
                result.append(candidate)
                new_members.append(candidate)
        test_set = new_members
    return result
