"""Loop iteration splitting (Section 3.3.1).

"As in this case, it is often possible to split the iterations of a loop in
Bound into two sets, one of which interferes with D and one of which does
not.  It is legal to split iterations when we have nests of loops that are
either independent or computing a reduction; they can be split by placing a
conditional on the induction variable."

The implementation is *verification-driven*: candidate restrictions are
proposed from the shape of the target descriptor (excluded points from
point-pattern dimensions, complementary ``where`` guards from masked
dimensions), the restricted loop is synthesised, re-analysed, and kept only
if its descriptor provably no longer interferes with the target.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.symbolic import SymExpr, compare
from ..descriptors import (
    Descriptor,
    DescriptorBuilder,
    interfere,
    loop_iterations_independent,
)
from ..descriptors.guards import MaskPred
from ..lang import ast
from .context import SplitContext

#: Reduction operators and their identity elements.
_REDUCTION_IDENTITY = {"+": 0, "*": 1}


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def find_reductions(loop: ast.DoLoop) -> Dict[str, str]:
    """Scalar accumulators of ``loop``: name -> associative operator.

    A scalar ``s`` is an accumulator when every statement touching it in
    the nest has the shape ``s = s OP expr`` (or ``s = expr OP s``) with a
    single associative ``OP`` and ``expr`` not reading ``s``.
    """
    candidates: Dict[str, str] = {}
    rejected = set()
    for node in loop.walk():
        if isinstance(node, ast.Assign):
            target = node.target
            if isinstance(target, ast.Var):
                op = _reduction_op(target.name, node.value)
                if op is None:
                    rejected.add(target.name)
                else:
                    previous = candidates.get(target.name)
                    if previous is not None and previous != op:
                        rejected.add(target.name)
                    else:
                        candidates[target.name] = op
        elif isinstance(node, ast.CallStmt):
            for arg in node.args:
                if isinstance(arg, ast.Var):
                    rejected.add(arg.name)
    # Any *other* read of the accumulator disqualifies it.
    for node in loop.walk():
        if isinstance(node, ast.Assign):
            reads = _reads_outside_reduction(node)
        elif isinstance(node, ast.DoLoop):
            reads = set()
            for rng in node.ranges:
                reads.update(ast.variables_read(rng.lo))
                reads.update(ast.variables_read(rng.hi))
            if node.where is not None:
                reads.update(ast.variables_read(node.where))
        elif isinstance(node, ast.If):
            reads = set(ast.variables_read(node.cond))
        else:
            continue
        rejected.update(reads & set(candidates))
    return {
        name: op for name, op in candidates.items() if name not in rejected
    }


def _reduction_op(name: str, value: ast.Expr) -> Optional[str]:
    """The operator if ``value`` has the shape ``name OP rest``."""
    if not isinstance(value, ast.BinOp) or value.op not in _REDUCTION_IDENTITY:
        return None
    left_is_acc = isinstance(value.left, ast.Var) and value.left.name == name
    right_is_acc = isinstance(value.right, ast.Var) and value.right.name == name
    if left_is_acc == right_is_acc:  # neither, or both
        return None
    rest = value.right if left_is_acc else value.left
    if name in ast.variables_read(rest):
        return None
    return value.op


def _reads_outside_reduction(stmt: ast.Assign) -> set:
    """Scalar reads of ``stmt`` excluding a well-formed accumulator use."""
    target = stmt.target
    reads = set()
    if isinstance(target, ast.ArrayRef):
        for index in target.indices:
            reads.update(ast.variables_read(index))
        reads.update(ast.variables_read(stmt.value))
        return reads
    op = _reduction_op(target.name, stmt.value)
    if op is None:
        reads.update(ast.variables_read(stmt.value))
        return reads
    value = stmt.value
    rest = value.right if (
        isinstance(value.left, ast.Var) and value.left.name == target.name
    ) else value.left
    reads.update(ast.variables_read(rest))
    return reads


def iterations_independent_modulo_reductions(
    loop: ast.DoLoop,
    builder: DescriptorBuilder,
    accumulators: Dict[str, str],
) -> bool:
    """Independence test with reduction accumulators set aside."""
    base = builder.of_iteration(loop)
    filtered = Descriptor(
        reads=tuple(t for t in base.reads if t.block not in accumulators),
        writes=tuple(t for t in base.writes if t.block not in accumulators),
    )
    fresh = f"{loop.var}'"
    other = filtered.substitute({loop.var: SymExpr.var(fresh)})
    pairs = frozenset({frozenset({loop.var, fresh})})
    return not interfere(filtered, other, pairs)


# ---------------------------------------------------------------------------
# Restriction candidates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PointCandidate:
    """Exclude the single iteration ``var == expr``."""

    expr: SymExpr

    def describe(self) -> str:
        return f"exclude point {self.expr}"


@dataclass(frozen=True)
class MultiPointCandidate:
    """Exclude several iterations at once (``var`` in a point set).

    Used for deeper pipelining (Section 3.3.2: "If deeper pipelining is
    desired, the descriptor for iteration i-2 can be computed, etc."),
    where both ``col-1`` and ``col-2`` must be excluded.  The points must
    be mutually ordered by constant differences.
    """

    exprs: Tuple[SymExpr, ...]  # sorted ascending

    def describe(self) -> str:
        return "exclude points " + ", ".join(str(e) for e in self.exprs)


@dataclass(frozen=True)
class MaskCandidate:
    """Restrict to iterations where ``array(var) OP value`` is *false*
    (the independent piece takes the complement of the target's mask)."""

    array: str
    op: str
    value: SymExpr

    def describe(self) -> str:
        return f"complement of mask {self.array}[*] {self.op} {self.value}"


Candidate = object  # Union[PointCandidate, MaskCandidate]


def restriction_candidates(target: Descriptor) -> List[Candidate]:
    """Propose restrictions from the shapes in the target descriptor."""
    candidates: List[Candidate] = []
    seen = set()

    def add(candidate: Candidate) -> None:
        if candidate not in seen:
            seen.add(candidate)
            candidates.append(candidate)

    for triple in tuple(target.writes) + tuple(target.reads):
        for pred in triple.guard:
            if isinstance(pred, MaskPred):
                add(MaskCandidate(pred.array, pred.op, pred.value))
        if triple.pattern:
            for dim in triple.pattern:
                if dim.mask is not None:
                    add(MaskCandidate(dim.mask.array, dim.mask.op, dim.mask.value))
                if dim.is_point:
                    add(PointCandidate(dim.range.lo))
    # Compose a multi-point candidate from every point candidate whose
    # pairwise differences are constant (deeper pipelining excludes
    # several adjacent iterations at once).
    points = [c.expr for c in candidates if isinstance(c, PointCandidate)]
    ordered = _order_points(points)
    if ordered is not None and len(ordered) >= 2:
        candidates.append(MultiPointCandidate(tuple(ordered)))
    return candidates


def _order_points(points: List[SymExpr]) -> Optional[List[SymExpr]]:
    """Sort and dedup points by constant pairwise differences, or None."""
    unique: List[SymExpr] = []
    for point in points:
        if point not in unique:
            unique.append(point)
    if len(unique) < 2:
        return unique
    base = unique[0]
    keyed = []
    for point in unique:
        offset = (point - base).constant_value()
        if offset is None:
            return None
        keyed.append((offset, point))
    keyed.sort(key=lambda pair: pair[0])
    return [point for _, point in keyed]


# ---------------------------------------------------------------------------
# AST synthesis helpers
# ---------------------------------------------------------------------------


def symexpr_to_ast(expr: SymExpr) -> ast.Expr:
    """Render an affine symbolic expression back into MiniF AST."""
    result: Optional[ast.Expr] = None

    def combine(term: ast.Expr, negative: bool) -> None:
        nonlocal result
        if result is None:
            result = ast.UnOp(op="-", operand=term) if negative else term
        else:
            result = ast.BinOp(op="-" if negative else "+", left=result, right=term)

    for name, coef in expr.terms:
        magnitude = abs(coef)
        term: ast.Expr = ast.Var(name=name)
        if magnitude != 1:
            term = ast.BinOp(op="*", left=ast.IntLit(value=magnitude), right=term)
        combine(term, coef < 0)
    const = expr.const
    if const or result is None:
        if isinstance(const, float):
            lit: ast.Expr = ast.FloatLit(value=abs(const))
        else:
            lit = ast.IntLit(value=abs(const))
        combine(lit, const < 0)
    return result


def _conjoin_where(loop: ast.DoLoop, cond: ast.Expr) -> None:
    if loop.where is None:
        loop.where = cond
    else:
        loop.where = ast.BinOp(op="and", left=loop.where, right=cond)


def rename_scalar(stmts: Sequence[ast.Stmt], old: str, new: str) -> None:
    """Rename every scalar occurrence of ``old`` (uses and defs) in place."""
    for stmt in stmts:
        for node in stmt.walk():
            if isinstance(node, ast.Var) and node.name == old:
                node.name = new


def rename_array(stmts: Sequence[ast.Stmt], old: str, new: str) -> None:
    """Rename every reference to array ``old`` in place."""
    for stmt in stmts:
        for node in stmt.walk():
            if isinstance(node, ast.ArrayRef) and node.name == old:
                node.name = new
            elif isinstance(node, ast.Var) and node.name == old:
                node.name = new


# ---------------------------------------------------------------------------
# The split itself
# ---------------------------------------------------------------------------


@dataclass
class LoopSplit:
    """The outcome of splitting one loop's iterations.

    ``independent`` provably does not interfere with the target descriptor;
    ``dependent`` holds the remaining iterations; ``merge`` recombines
    results (replicated reduction accumulators, optional explicit array
    merges).  ``renamed_arrays`` maps original array names to the
    (independent, dependent) replicas when an explicit merge was generated.
    """

    independent: List[ast.Stmt]
    dependent: List[ast.Stmt]
    merge: List[ast.Stmt] = field(default_factory=list)
    restriction: str = ""
    level_var: str = ""
    accumulators: Dict[str, str] = field(default_factory=dict)
    renamed_arrays: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def _nest_loops(loop: ast.DoLoop) -> List[ast.DoLoop]:
    """The loop and its nested loops, outermost first (preorder)."""
    return [n for n in loop.walk() if isinstance(n, ast.DoLoop)]


def _loop_path(root: ast.DoLoop, target_var: str) -> List[ast.DoLoop]:
    """Chain of loops from ``root`` to the loop with ``target_var``."""
    path: List[ast.DoLoop] = []

    def search(loop: ast.DoLoop) -> bool:
        path.append(loop)
        if loop.var == target_var:
            return True
        for stmt in loop.body:
            if isinstance(stmt, ast.DoLoop) and search(stmt):
                return True
        path.pop()
        return False

    search(root)
    return path


def try_split_loop(
    loop: ast.DoLoop,
    target: Descriptor,
    context: SplitContext,
    explicit_merge: bool = True,
    assume_point_in_range: bool = True,
) -> Optional[LoopSplit]:
    """Attempt to split ``loop``'s iterations away from ``target``.

    Tries every (loop level, candidate restriction) pair and returns the
    first verified split, or ``None``.
    """
    candidates = restriction_candidates(target)
    if not candidates:
        return None
    builder = context.builder_for([loop])
    root = builder.body[0]
    accumulators = find_reductions(root)
    levels = _nest_loops(root)
    # Legality: every level down the nest must be independent modulo the
    # reductions.
    legal_vars = []
    for level in levels:
        if iterations_independent_modulo_reductions(
            level, builder.builder, accumulators
        ):
            legal_vars.append(level.var)
        else:
            break
    for level in levels:
        if level.var not in legal_vars:
            continue
        for candidate in candidates:
            result = _attempt(
                loop,
                level.var,
                candidate,
                target,
                context,
                accumulators,
                explicit_merge,
                assume_point_in_range,
            )
            if result is not None:
                return result
    return None


def _attempt(
    loop: ast.DoLoop,
    var: str,
    candidate: Candidate,
    target: Descriptor,
    context: SplitContext,
    accumulators: Dict[str, str],
    explicit_merge: bool,
    assume_point_in_range: bool,
) -> Optional[LoopSplit]:
    independent = copy.deepcopy(loop)
    dependent = copy.deepcopy(loop)
    indep_level = _find_level(independent, var)
    dep_level = _find_level(dependent, var)

    if isinstance(candidate, PointCandidate):
        if candidate.expr.mentions(var):
            return None
        ok = _restrict_exclude_point(
            indep_level, candidate.expr, assume_point_in_range
        )
        if not ok:
            return None
        _restrict_to_point(dep_level, candidate.expr, assume_point_in_range)
        description = candidate.describe()
    elif isinstance(candidate, MultiPointCandidate):
        if any(e.mentions(var) for e in candidate.exprs):
            return None
        if not assume_point_in_range:
            return None
        if any(r.step is not None for r in indep_level.ranges):
            return None
        _restrict_exclude_points(indep_level, candidate.exprs)
        dep_level.ranges = [
            ast.DoRange(
                lo=symexpr_to_ast(expr), hi=symexpr_to_ast(expr)
            )
            for expr in candidate.exprs
        ]
        description = candidate.describe()
    elif isinstance(candidate, MaskCandidate):
        if candidate.value.mentions(var):
            return None
        complement = _mask_cond(candidate, var, complement=True)
        original = _mask_cond(candidate, var, complement=False)
        _conjoin_where(indep_level, complement)
        _conjoin_where(dep_level, original)
        description = candidate.describe()
    else:  # pragma: no cover - defensive
        return None

    # Verify: the independent piece must not interfere with the target.
    indep_descriptor = context.descriptor_of([independent])
    filtered = Descriptor(
        reads=tuple(
            t for t in indep_descriptor.reads if t.block not in accumulators
        ),
        writes=tuple(
            t for t in indep_descriptor.writes if t.block not in accumulators
        ),
    )
    if interfere(filtered, target):
        return None

    split = LoopSplit(
        independent=[independent],
        dependent=[dependent],
        restriction=description,
        level_var=var,
    )
    _replicate_accumulators(split, accumulators, context)
    if explicit_merge:
        _explicit_array_merge(split, loop, var, candidate, context)
    return split


def _find_level(root: ast.DoLoop, var: str) -> ast.DoLoop:
    for node in root.walk():
        if isinstance(node, ast.DoLoop) and node.var == var:
            return node
    raise KeyError(var)


def _restrict_exclude_point(
    level: ast.DoLoop, point: SymExpr, assume_in_range: bool
) -> bool:
    """Rewrite the level's ranges to skip ``var == point``."""
    point_ast = symexpr_to_ast(point)
    if all(r.step is None for r in level.ranges) and assume_in_range:
        new_ranges: List[ast.DoRange] = []
        for rng in level.ranges:
            before = ast.DoRange(
                lo=copy.deepcopy(rng.lo),
                hi=symexpr_to_ast(point - 1),
            )
            after = ast.DoRange(
                lo=symexpr_to_ast(point + 1),
                hi=copy.deepcopy(rng.hi),
            )
            new_ranges.extend([before, after])
        level.ranges = new_ranges
        return True
    # Fallback: keep ranges, add a where-conjunct var <> point.
    _conjoin_where(
        level,
        ast.BinOp(op="<>", left=ast.Var(name=level.var), right=point_ast),
    )
    return True


def _restrict_exclude_points(
    level: ast.DoLoop, points: Tuple[SymExpr, ...]
) -> None:
    """Rewrite ranges to skip every point (points sorted ascending)."""
    new_ranges: List[ast.DoRange] = []
    for rng in level.ranges:
        lo_ast = copy.deepcopy(rng.lo)
        for point in points:
            new_ranges.append(
                ast.DoRange(lo=lo_ast, hi=symexpr_to_ast(point - 1))
            )
            lo_ast = symexpr_to_ast(point + 1)
        new_ranges.append(ast.DoRange(lo=lo_ast, hi=copy.deepcopy(rng.hi)))
    level.ranges = new_ranges


def _restrict_to_point(
    level: ast.DoLoop, point: SymExpr, assume_in_range: bool
) -> None:
    point_ast = symexpr_to_ast(point)
    if assume_in_range:
        level.ranges = [
            ast.DoRange(lo=copy.deepcopy(point_ast), hi=copy.deepcopy(point_ast))
        ]
    else:
        _conjoin_where(
            level,
            ast.BinOp(op="==", left=ast.Var(name=level.var), right=point_ast),
        )


def _mask_cond(candidate: MaskCandidate, var: str, complement: bool) -> ast.Expr:
    op = candidate.op
    if complement:
        op = ast.NEGATED_COMPARISON[op]
    return ast.BinOp(
        op=op,
        left=ast.ArrayRef(name=candidate.array, indices=[ast.Var(name=var)]),
        right=symexpr_to_ast(candidate.value),
    )


def _replicate_accumulators(
    split: LoopSplit, accumulators: Dict[str, str], context: SplitContext
) -> None:
    """Give the independent piece fresh accumulators and merge them back.

    The dependent piece keeps the original accumulator (so any incoming
    value flows through it); the independent piece accumulates into a fresh
    scalar initialised to the operator's identity; the merge applies the
    operator once (the paper's "as a final step in merging, the last
    reduction is performed")."""
    for name, op in accumulators.items():
        decl = context.decl_for(name)
        base_type = decl.base_type if decl else "real"
        replica = context.fresh_scalar(name, base_type)
        rename_scalar(split.independent, name, replica)
        identity = _REDUCTION_IDENTITY[op]
        split.independent.insert(
            0,
            ast.Assign(
                target=ast.Var(name=replica), value=ast.IntLit(value=identity)
            ),
        )
        split.merge.append(
            ast.Assign(
                target=ast.Var(name=name),
                value=ast.BinOp(
                    op=op,
                    left=ast.Var(name=name),
                    right=ast.Var(name=replica),
                ),
            )
        )
        split.accumulators[name] = replica


def _explicit_array_merge(
    split: LoopSplit,
    original: ast.DoLoop,
    var: str,
    candidate: Candidate,
    context: SplitContext,
) -> None:
    """Replicate arrays written by both pieces and synthesise merge loops.

    Follows Figure 2: each piece writes its own replica; the merge iterates
    the restriction variable and copies the slice from whichever replica
    owns it.  Only arrays whose written dimension is indexed *exactly* by
    the restriction variable are merged explicitly; others stay implicit
    (disjoint in-place writes)."""
    builder = context.builder_for([original])
    var_expr = SymExpr.var(var)

    # Identify, per written array, the dimension carried by the restriction
    # variable.  The iteration view (induction variables unresolved) shows
    # it directly: a point dimension whose expression is exactly `var`.
    merge_specs: List[Tuple[str, int]] = []
    level_in_fragment = _find_level(builder.body[0], var)
    iteration = builder.builder.of_iteration(level_in_fragment)
    for triple in iteration.writes:
        if not triple.pattern or triple.approximate:
            continue
        for position, dim in enumerate(triple.pattern):
            if dim.is_point and dim.range.lo == var_expr:
                spec = (triple.block, position)
                if spec not in merge_specs:
                    merge_specs.append(spec)

    for array, position in merge_specs:
        decl = context.decl_for(array)
        if decl is None or not decl.is_array:
            continue
        indep_name = context.fresh_array_like(array)
        dep_name = context.fresh_array_like(array)
        rename_array(split.independent, array, indep_name)
        rename_array(split.dependent, array, dep_name)
        split.renamed_arrays[array] = (indep_name, dep_name)
        split.merge.append(
            _merge_loop(
                array,
                indep_name,
                dep_name,
                position,
                decl,
                original,
                var,
                candidate,
            )
        )


def _merge_loop(
    array: str,
    indep_name: str,
    dep_name: str,
    position: int,
    decl: ast.Decl,
    original: ast.DoLoop,
    var: str,
    candidate: Candidate,
) -> ast.Stmt:
    """``do v = <ranges>: if (<indep cond>) copy from indep else from dep``."""
    level = _find_level(copy.deepcopy(original), var)
    if isinstance(candidate, PointCandidate):
        indep_cond: ast.Expr = ast.BinOp(
            op="<>",
            left=ast.Var(name=var),
            right=symexpr_to_ast(candidate.expr),
        )
    elif isinstance(candidate, MultiPointCandidate):
        indep_cond = ast.BinOp(
            op="<>",
            left=ast.Var(name=var),
            right=symexpr_to_ast(candidate.exprs[0]),
        )
        for expr in candidate.exprs[1:]:
            indep_cond = ast.BinOp(
                op="and",
                left=indep_cond,
                right=ast.BinOp(
                    op="<>",
                    left=ast.Var(name=var),
                    right=symexpr_to_ast(expr),
                ),
            )
    else:
        indep_cond = _mask_cond(candidate, var, complement=True)

    # Copy loops over the remaining dimensions.
    other_vars: List[str] = []
    indices: List[ast.Expr] = []
    for dim_index in range(decl.rank):
        if dim_index == position:
            indices.append(ast.Var(name=var))
        else:
            copy_var = f"{var}_m{dim_index}"
            other_vars.append(copy_var)
            indices.append(ast.Var(name=copy_var))

    def copy_stmt(source: str) -> ast.Stmt:
        inner: ast.Stmt = ast.Assign(
            target=ast.ArrayRef(name=array, indices=copy.deepcopy(indices)),
            value=ast.ArrayRef(name=source, indices=copy.deepcopy(indices)),
        )
        for dim_index in reversed(range(decl.rank)):
            if dim_index == position:
                continue
            dim = decl.dims[dim_index]
            inner = ast.DoLoop(
                var=f"{var}_m{dim_index}",
                ranges=[
                    ast.DoRange(
                        lo=copy.deepcopy(dim.lo), hi=copy.deepcopy(dim.hi)
                    )
                ],
                body=[inner],
            )
        return inner

    body: List[ast.Stmt] = [
        ast.If(
            cond=indep_cond,
            then_body=[copy_stmt(indep_name)],
            else_body=[copy_stmt(dep_name)],
        )
    ]
    return ast.DoLoop(
        var=var,
        ranges=[copy.deepcopy(r) for r in level.ranges],
        body=body,
    )
