"""The ReadLinked movement heuristic (Section 3.3.1).

"In our current implementation, we use a heuristic to decide whether moving
a member of ReadLinked is worthwhile.  The heuristic goes ahead with the
move if both of the following are true:

* the number of floating point and integer computations in the code that is
  to be replicated can be calculated and it is below a threshold
* profiling data shows that the computation is expensive enough to justify
  moving it"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..analysis.symbolic import expr_from_ast
from ..lang import ast
from ..lang.builtins import call_cost
from .primitives import Primitive

#: Trip count assumed for loops with symbolic bounds when *estimating*
#: benefit (never when deciding calculability of replication cost).
NOMINAL_TRIP = 32.0


def static_op_count(stmts: Sequence[ast.Stmt]) -> Optional[float]:
    """Number of arithmetic operations, if statically calculable.

    Returns ``None`` when a loop's trip count is not a compile-time
    constant — the paper requires the replication cost to be *calculable*.
    """
    total = 0.0
    for stmt in stmts:
        count = _stmt_ops(stmt)
        if count is None:
            return None
        total += count
    return total


def _stmt_ops(stmt: ast.Stmt) -> Optional[float]:
    if isinstance(stmt, ast.Assign):
        return _expr_ops(stmt.value) + sum(
            _expr_ops(i) for i in getattr(stmt.target, "indices", [])
        )
    if isinstance(stmt, ast.CallStmt):
        return call_cost(stmt.name) + sum(_expr_ops(a) for a in stmt.args)
    if isinstance(stmt, ast.Return):
        return _expr_ops(stmt.value) if stmt.value is not None else 0.0
    if isinstance(stmt, ast.If):
        then_ops = static_op_count(stmt.then_body)
        else_ops = static_op_count(stmt.else_body)
        if then_ops is None or else_ops is None:
            return None
        return _expr_ops(stmt.cond) + max(then_ops, else_ops)
    if isinstance(stmt, ast.DoLoop):
        trip = _static_trip_count(stmt)
        if trip is None:
            return None
        body = static_op_count(stmt.body)
        if body is None:
            return None
        guard_ops = _expr_ops(stmt.where) if stmt.where is not None else 0.0
        return trip * (body + guard_ops)
    raise TypeError(f"unexpected statement {type(stmt).__name__}")


def _static_trip_count(loop: ast.DoLoop) -> Optional[float]:
    total = 0.0
    for rng in loop.ranges:
        lo = expr_from_ast(rng.lo)
        hi = expr_from_ast(rng.hi)
        if lo is None or hi is None:
            return None
        span = (hi - lo).constant_value()
        if span is None:
            return None
        step = 1
        if rng.step is not None:
            step_expr = expr_from_ast(rng.step)
            if step_expr is None or step_expr.constant_value() is None:
                return None
            step = int(step_expr.constant_value())
        if span >= 0:
            total += span // step + 1
    return total


def _expr_ops(expr: ast.Expr) -> float:
    total = 0.0
    for node in expr.walk():
        if isinstance(node, (ast.BinOp, ast.UnOp)):
            total += 1
        elif isinstance(node, ast.Call):
            total += call_cost(node.name)
    return total


def estimated_weight(primitive: Primitive) -> float:
    """Benefit estimate for a primitive: op count with nominal trip counts
    substituted for symbolic loop bounds (a stand-in for profile data)."""
    return _estimate_stmts(primitive.stmts)


def _estimate_stmts(stmts: Sequence[ast.Stmt]) -> float:
    total = 0.0
    for stmt in stmts:
        if isinstance(stmt, ast.DoLoop):
            trip = _static_trip_count(stmt)
            if trip is None:
                trip = NOMINAL_TRIP * len(stmt.ranges)
            total += trip * _estimate_stmts(stmt.body)
        elif isinstance(stmt, ast.If):
            total += _expr_ops(stmt.cond)
            total += max(
                _estimate_stmts(stmt.then_body), _estimate_stmts(stmt.else_body)
            )
        elif isinstance(stmt, ast.Assign):
            total += _stmt_ops(stmt) or 0.0
        elif isinstance(stmt, ast.CallStmt):
            total += call_cost(stmt.name)
        elif isinstance(stmt, ast.Return):
            total += 0.0
    return total


@dataclass
class ReadLinkedHeuristic:
    """Decides whether to move a ReadLinked primitive into C_I.

    ``replication_threshold`` bounds the statically calculable cost of the
    code that would be replicated; ``benefit_threshold`` is the minimum
    (profiled or estimated) weight of the candidate itself.
    """

    replication_threshold: float = 500.0
    benefit_threshold: float = 50.0
    profile: Optional[Callable[[Primitive], float]] = None

    def should_move(
        self, candidate: Primitive, to_replicate: Sequence[Primitive]
    ) -> bool:
        replicated_stmts = [s for p in to_replicate for s in p.stmts]
        cost = static_op_count(replicated_stmts)
        if cost is None or cost >= self.replication_threshold:
            return False
        weigher = self.profile or estimated_weight
        return weigher(candidate) >= self.benefit_threshold
