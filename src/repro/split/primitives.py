"""Primitive computations (Section 3.3.1).

"The split algorithm begins by subdividing C into primitive computations.
Primitive computations are the blocks of code that are managed by the
transformation; the choice of primitive computation determines the
granularity of the split.  We have chosen to consider basic blocks,
function calls, and loops as primitive computations."

``if`` statements whose bodies contain no loops or calls fold into basic
blocks; otherwise the whole conditional is one primitive (it cannot be
bisected without control-flow surgery).  Loop nests that profiling marks
as infrequently executed can be kept whole via ``no_decompose``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..descriptors import Descriptor
from ..lang import ast
from .context import SplitContext

BLOCK = "block"
LOOP = "loop"
CALL = "call"
COND = "cond"


@dataclass(eq=False)
class Primitive:
    """One primitive computation: a run of simple statements, a loop, a
    call, or a conditional."""

    index: int
    kind: str
    stmts: List[ast.Stmt]
    descriptor: Descriptor

    @property
    def loop(self) -> Optional[ast.DoLoop]:
        if self.kind == LOOP:
            return self.stmts[0]
        return None

    def __repr__(self) -> str:
        return f"<Primitive {self.index} {self.kind} ({len(self.stmts)} stmt)>"


def _is_simple(stmt: ast.Stmt) -> bool:
    if isinstance(stmt, (ast.Assign, ast.Return)):
        return True
    if isinstance(stmt, ast.If):
        return all(_is_simple(s) for s in stmt.then_body) and all(
            _is_simple(s) for s in stmt.else_body
        )
    return False


def decompose(
    stmts: Sequence[ast.Stmt],
    context: SplitContext,
    no_decompose: bool = False,
) -> List[Primitive]:
    """Subdivide a statement region into primitive computations.

    With ``no_decompose`` the entire region becomes a single primitive
    (the paper's infrequently-executed case).
    """
    if no_decompose and stmts:
        return [
            Primitive(
                index=0,
                kind=BLOCK,
                stmts=list(stmts),
                descriptor=context.descriptor_of(stmts),
            )
        ]
    primitives: List[Primitive] = []
    run: List[ast.Stmt] = []

    def flush() -> None:
        if run:
            primitives.append(
                Primitive(
                    index=len(primitives),
                    kind=BLOCK,
                    stmts=list(run),
                    descriptor=context.descriptor_of(run),
                )
            )
            run.clear()

    for stmt in stmts:
        if isinstance(stmt, ast.DoLoop):
            flush()
            primitives.append(
                Primitive(
                    index=len(primitives),
                    kind=LOOP,
                    stmts=[stmt],
                    descriptor=context.descriptor_of([stmt]),
                )
            )
        elif isinstance(stmt, ast.CallStmt):
            flush()
            primitives.append(
                Primitive(
                    index=len(primitives),
                    kind=CALL,
                    stmts=[stmt],
                    descriptor=context.descriptor_of([stmt]),
                )
            )
        elif _is_simple(stmt):
            run.append(stmt)
        else:
            # A conditional containing loops/calls: one indivisible
            # primitive.
            flush()
            primitives.append(
                Primitive(
                    index=len(primitives),
                    kind=COND,
                    stmts=[stmt],
                    descriptor=context.descriptor_of([stmt]),
                )
            )
    flush()
    return primitives
