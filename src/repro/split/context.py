"""Split-transformation context: re-analysis and fresh-name support.

The split transformation synthesises new code (restricted loops, replicated
accumulators, merge loops).  Descriptors for synthesised fragments are
obtained by re-running the Section 3.1 analysis pipeline over a synthetic
unit that shares the original unit's declarations — the same machinery the
compiler would use, applied to the transformed program.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis import AnalysisResult, analyze_unit
from ..descriptors import Descriptor, DescriptorBuilder
from ..descriptors.guards import Guard, TRUE_GUARD
from ..lang import ast


def clone_stmts(stmts: Sequence[ast.Stmt]) -> List[ast.Stmt]:
    """Deep-copy statements so transformations never mutate the input AST."""
    return [copy.deepcopy(s) for s in stmts]


class SplitContext:
    """Shared state for one application of split.

    Owns the unit's declarations (extended with fresh variables created
    during the transformation) and provides descriptor construction for
    arbitrary statement fragments via re-analysis.
    """

    def __init__(self, unit: ast.Unit):
        self.unit = unit
        #: Declarations visible to synthesised code; grows as fresh
        #: variables are created.
        self.decls: List[ast.Decl] = list(unit.decls)
        self._names = {d.name for d in unit.decls}
        self._names.update(unit.params)
        for node in unit.walk():
            if isinstance(node, ast.Var):
                self._names.add(node.name)
            elif isinstance(node, ast.DoLoop):
                self._names.add(node.var)
        self._counter = 0

    # -- fresh names -----------------------------------------------------------

    def fresh_scalar(self, base: str, base_type: str = "real") -> str:
        """A new scalar name derived from ``base``, declared in context."""
        name = self._fresh_name(base)
        self.decls.append(ast.Decl(name=name, base_type=base_type))
        return name

    def fresh_array_like(self, template: str) -> str:
        """A new array with the same shape/type as ``template``."""
        source = next(d for d in self.decls if d.name == template)
        name = self._fresh_name(template)
        self.decls.append(
            ast.Decl(
                name=name,
                base_type=source.base_type,
                dims=[copy.deepcopy(d) for d in source.dims],
            )
        )
        return name

    def _fresh_name(self, base: str) -> str:
        candidate = f"{base}{self._suffix()}"
        while candidate in self._names:
            candidate = f"{base}{self._suffix()}"
        self._names.add(candidate)
        return candidate

    def _suffix(self) -> str:
        self._counter += 1
        return str(self._counter)

    def decl_for(self, name: str) -> Optional[ast.Decl]:
        for decl in self.decls:
            if decl.name == name:
                return decl
        return None

    # -- re-analysis ----------------------------------------------------------------

    def analyse(self, stmts: Sequence[ast.Stmt]) -> AnalysisResult:
        """Analyse a statement fragment under the context's declarations."""
        synthetic = ast.Program(
            name="__split_fragment__",
            params=list(self.unit.params),
            decls=[copy.deepcopy(d) for d in self.decls],
            body=clone_stmts(stmts),
        )
        return analyze_unit(synthetic)

    def builder_for(self, stmts: Sequence[ast.Stmt]) -> "FragmentBuilder":
        """A descriptor builder over a *fresh analysis* of ``stmts``.

        The returned builder's positional statement list mirrors the input
        (``fragment.body[i]`` corresponds to ``stmts[i]``), so callers index
        by position rather than by node identity.
        """
        analysis = self.analyse(stmts)
        return FragmentBuilder(analysis)

    def descriptor_of(
        self, stmts: Sequence[ast.Stmt], extra_guard: Guard = TRUE_GUARD
    ) -> Descriptor:
        """Descriptor of a synthesised fragment (via re-analysis)."""
        builder = self.builder_for(stmts)
        return builder.builder.region(builder.analysis.unit.body, extra_guard)


@dataclass(eq=False)
class FragmentBuilder:
    """Pairs an analysis of a synthetic fragment with its builder."""

    analysis: AnalysisResult
    builder: DescriptorBuilder = field(init=False)

    def __post_init__(self):
        self.builder = DescriptorBuilder(self.analysis)

    @property
    def body(self) -> List[ast.Stmt]:
        return self.analysis.unit.body
