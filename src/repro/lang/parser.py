"""Recursive-descent parser for MiniF.

The grammar is deliberately close to FORTRAN 77 free form::

    file        := unit*
    unit        := program | subroutine | function
    program     := 'program' IDENT NL decl* stmt* 'end' 'program' [IDENT] NL
    subroutine  := 'subroutine' IDENT '(' params? ')' NL decl* stmt*
                   'end' 'subroutine' [IDENT] NL
    function    := [type] 'function' IDENT '(' params? ')' NL decl* stmt*
                   'end' 'function' [IDENT] NL
    decl        := type declitem (',' declitem)* NL
    declitem    := IDENT [ '(' dim (',' dim)* ')' ]
    dim         := expr [ ':' expr ]
    stmt        := assign | do | if | call | return
    do          := 'do' IDENT '=' range ('and' range)*
                   ['where' '(' expr ')'] NL stmt* 'end' 'do' NL
    range       := bound ',' bound [',' bound]
    if          := 'if' '(' expr ')' 'then' NL stmt*
                   ('elseif' '(' expr ')' 'then' NL stmt*)*
                   ['else' NL stmt*] 'end' 'if' NL
                 | 'if' '(' expr ')' simple_stmt NL

Loop bounds (``bound``) are parsed at comparison precedence so that the
keyword ``and`` can serve as the discontinuous-range joiner from the paper's
Figure 3 (``do i = 1, col-2 and col, n``) while remaining the logical
conjunction inside parenthesised conditions.

``name(...)`` is an :class:`~repro.lang.ast.ArrayRef` when ``name`` is a
declared array (or an array parameter) of the enclosing unit, and a
:class:`~repro.lang.ast.Call` otherwise — the standard FORTRAN
disambiguation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from . import ast
from .errors import ParseError, SemanticError
from .lexer import tokenize
from .tokens import Token, TokenKind

_TYPE_KINDS = (TokenKind.INTEGER, TokenKind.REAL, TokenKind.LOGICAL)

_COMPARISON_TOKENS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "<>",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}


class Parser:
    """Parses a token stream into a :class:`~repro.lang.ast.SourceFile`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0
        # Arrays declared in the unit currently being parsed; used to
        # disambiguate ArrayRef vs Call.
        self._arrays: Dict[str, ast.Decl] = {}

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, *kinds: TokenKind) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind, context: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            where = f" in {context}" if context else ""
            raise ParseError(
                f"expected {kind.value}{where}, found {tok.kind.value}"
                f" ({tok.value!r})",
                tok.location,
            )
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._at(TokenKind.NEWLINE):
            self._advance()

    def _end_statement(self) -> None:
        if self._at(TokenKind.EOF):
            return
        self._expect(TokenKind.NEWLINE, "statement end")
        self._skip_newlines()

    # -- program units ------------------------------------------------------

    def parse_file(self) -> ast.SourceFile:
        units: List[ast.Unit] = []
        self._skip_newlines()
        while not self._at(TokenKind.EOF):
            units.append(self._parse_unit())
            self._skip_newlines()
        return ast.SourceFile(units=units)

    def _parse_unit(self) -> ast.Unit:
        tok = self._peek()
        if tok.kind is TokenKind.PROGRAM:
            return self._parse_program()
        if tok.kind is TokenKind.SUBROUTINE:
            return self._parse_subroutine()
        if tok.kind is TokenKind.FUNCTION or (
            tok.kind in _TYPE_KINDS
            and self._peek(1).kind is TokenKind.FUNCTION
        ):
            return self._parse_function()
        raise ParseError(
            f"expected a program unit, found {tok.kind.value}", tok.location
        )

    def _parse_program(self) -> ast.Program:
        loc = self._expect(TokenKind.PROGRAM).location
        name = str(self._expect(TokenKind.IDENT, "program header").value)
        self._end_statement()
        self._arrays = {}
        decls = self._parse_decls()
        body = self._parse_stmts()
        self._parse_end("program", name)
        return ast.Program(name=name, decls=decls, body=body, loc=loc)

    def _parse_subroutine(self) -> ast.Subroutine:
        loc = self._expect(TokenKind.SUBROUTINE).location
        name = str(self._expect(TokenKind.IDENT, "subroutine header").value)
        params = self._parse_params()
        self._end_statement()
        self._arrays = {}
        decls = self._parse_decls()
        body = self._parse_stmts()
        self._parse_end("subroutine", name)
        return ast.Subroutine(
            name=name, params=params, decls=decls, body=body, loc=loc
        )

    def _parse_function(self) -> ast.Function:
        result_type = "real"
        if self._peek().kind in _TYPE_KINDS:
            result_type = str(self._advance().value)
        loc = self._expect(TokenKind.FUNCTION).location
        name = str(self._expect(TokenKind.IDENT, "function header").value)
        params = self._parse_params()
        self._end_statement()
        self._arrays = {}
        decls = self._parse_decls()
        body = self._parse_stmts()
        self._parse_end("function", name)
        return ast.Function(
            name=name,
            params=params,
            decls=decls,
            body=body,
            result_type=result_type,
            loc=loc,
        )

    def _parse_params(self) -> List[str]:
        params: List[str] = []
        self._expect(TokenKind.LPAREN, "parameter list")
        if not self._at(TokenKind.RPAREN):
            params.append(str(self._expect(TokenKind.IDENT).value))
            while self._at(TokenKind.COMMA):
                self._advance()
                params.append(str(self._expect(TokenKind.IDENT).value))
        self._expect(TokenKind.RPAREN, "parameter list")
        return params

    def _parse_end(self, unit_kind: str, name: str) -> None:
        self._expect(TokenKind.END, f"{unit_kind} {name}")
        # 'end program psirrfan' / 'end subroutine' / bare 'end'.
        if self._at(
            TokenKind.PROGRAM, TokenKind.SUBROUTINE, TokenKind.FUNCTION
        ):
            self._advance()
            if self._at(TokenKind.IDENT):
                self._advance()
        if not self._at(TokenKind.EOF):
            self._end_statement()

    # -- declarations ---------------------------------------------------------

    def _parse_decls(self) -> List[ast.Decl]:
        decls: List[ast.Decl] = []
        while self._peek().kind in _TYPE_KINDS:
            base_type = str(self._advance().value)
            decls.append(self._parse_declitem(base_type))
            while self._at(TokenKind.COMMA):
                self._advance()
                decls.append(self._parse_declitem(base_type))
            self._end_statement()
        return decls

    def _parse_declitem(self, base_type: str) -> ast.Decl:
        tok = self._expect(TokenKind.IDENT, "declaration")
        name = str(tok.value)
        dims: List[ast.DimSpec] = []
        if self._at(TokenKind.LPAREN):
            self._advance()
            dims.append(self._parse_dim())
            while self._at(TokenKind.COMMA):
                self._advance()
                dims.append(self._parse_dim())
            self._expect(TokenKind.RPAREN, "array declaration")
        decl = ast.Decl(name=name, base_type=base_type, dims=dims, loc=tok.location)
        if dims:
            self._arrays[name] = decl
        return decl

    def _parse_dim(self) -> ast.DimSpec:
        first = self._parse_expr()
        if self._at(TokenKind.COLON):
            self._advance()
            hi = self._parse_expr()
            return ast.DimSpec(lo=first, hi=hi)
        return ast.DimSpec(lo=ast.IntLit(1), hi=first)

    # -- statements -----------------------------------------------------------

    def _parse_stmts(self) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        self._skip_newlines()
        while not self._at(TokenKind.END, TokenKind.EOF, TokenKind.ELSE, TokenKind.ELSEIF):
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.DO:
            return self._parse_do()
        if tok.kind is TokenKind.IF:
            return self._parse_if()
        if tok.kind is TokenKind.CALL:
            stmt = self._parse_call_stmt()
            self._end_statement()
            return stmt
        if tok.kind is TokenKind.RETURN:
            self._advance()
            value = None
            if not self._at(TokenKind.NEWLINE, TokenKind.EOF):
                value = self._parse_expr()
            self._end_statement()
            return ast.Return(value=value, loc=tok.location)
        if tok.kind is TokenKind.IDENT:
            stmt = self._parse_assign()
            self._end_statement()
            return stmt
        raise ParseError(
            f"expected a statement, found {tok.kind.value}", tok.location
        )

    def _parse_assign(self) -> ast.Assign:
        tok = self._peek()
        target = self._parse_primary()
        if not isinstance(target, (ast.Var, ast.ArrayRef)):
            raise SemanticError(
                "assignment target must be a variable or array element",
                tok.location,
            )
        if isinstance(target, ast.Call):  # pragma: no cover - defensive
            raise SemanticError(
                f"cannot assign to call of {target.name!r}", tok.location
            )
        self._expect(TokenKind.ASSIGN, "assignment")
        value = self._parse_expr()
        return ast.Assign(target=target, value=value, loc=tok.location)

    def _parse_call_stmt(self) -> ast.CallStmt:
        loc = self._expect(TokenKind.CALL).location
        name = str(self._expect(TokenKind.IDENT, "call statement").value)
        args: List[ast.Expr] = []
        if self._at(TokenKind.LPAREN):
            self._advance()
            if not self._at(TokenKind.RPAREN):
                args.append(self._parse_expr())
                while self._at(TokenKind.COMMA):
                    self._advance()
                    args.append(self._parse_expr())
            self._expect(TokenKind.RPAREN, "call statement")
        return ast.CallStmt(name=name, args=args, loc=loc)

    def _parse_do(self) -> ast.DoLoop:
        loc = self._expect(TokenKind.DO).location
        var = str(self._expect(TokenKind.IDENT, "do header").value)
        self._expect(TokenKind.ASSIGN, "do header")
        ranges = [self._parse_range()]
        while self._at(TokenKind.AND_RANGE):
            self._advance()
            ranges.append(self._parse_range())
        where = None
        if self._at(TokenKind.WHERE):
            self._advance()
            self._expect(TokenKind.LPAREN, "where clause")
            where = self._parse_expr()
            self._expect(TokenKind.RPAREN, "where clause")
        self._end_statement()
        body = self._parse_stmts()
        self._expect(TokenKind.END, "do loop")
        self._expect(TokenKind.DO, "do loop")
        self._end_statement()
        return ast.DoLoop(var=var, ranges=ranges, body=body, where=where, loc=loc)

    def _parse_range(self) -> ast.DoRange:
        lo = self._parse_bound()
        self._expect(TokenKind.COMMA, "do range")
        hi = self._parse_bound()
        step = None
        if self._at(TokenKind.COMMA):
            self._advance()
            step = self._parse_bound()
        return ast.DoRange(lo=lo, hi=hi, step=step)

    def _parse_if(self) -> ast.If:
        loc = self._expect(TokenKind.IF).location
        self._expect(TokenKind.LPAREN, "if condition")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "if condition")
        if not self._at(TokenKind.THEN):
            # One-line form: 'if (c) stmt'.
            body_tok = self._peek()
            if body_tok.kind is TokenKind.CALL:
                inner: ast.Stmt = self._parse_call_stmt()
            elif body_tok.kind is TokenKind.RETURN:
                self._advance()
                value = None
                if not self._at(TokenKind.NEWLINE, TokenKind.EOF):
                    value = self._parse_expr()
                inner = ast.Return(value=value, loc=body_tok.location)
            else:
                inner = self._parse_assign()
            self._end_statement()
            return ast.If(cond=cond, then_body=[inner], loc=loc)
        self._expect(TokenKind.THEN, "if statement")
        self._end_statement()
        then_body = self._parse_stmts()
        else_body: List[ast.Stmt] = []
        if self._at(TokenKind.ELSEIF):
            elif_tok = self._advance()
            else_body = [self._parse_if_tail_as_elseif(elif_tok)]
        elif self._at(TokenKind.ELSE):
            self._advance()
            self._end_statement()
            else_body = self._parse_stmts()
        self._expect(TokenKind.END, "if statement")
        self._expect(TokenKind.IF, "if statement")
        self._end_statement()
        return ast.If(cond=cond, then_body=then_body, else_body=else_body, loc=loc)

    def _parse_if_tail_as_elseif(self, elif_tok: Token) -> ast.If:
        """Parse ``(cond) then ... [elseif|else ...]`` after an ``elseif``.

        The chain shares the enclosing ``end if``, which the *outermost*
        caller consumes; this helper returns before it.
        """
        self._expect(TokenKind.LPAREN, "elseif condition")
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN, "elseif condition")
        self._expect(TokenKind.THEN, "elseif")
        self._end_statement()
        then_body = self._parse_stmts()
        else_body: List[ast.Stmt] = []
        if self._at(TokenKind.ELSEIF):
            self._advance()
            else_body = [self._parse_if_tail_as_elseif(self._peek())]
        elif self._at(TokenKind.ELSE):
            self._advance()
            self._end_statement()
            else_body = self._parse_stmts()
        return ast.If(
            cond=cond,
            then_body=then_body,
            else_body=else_body,
            loc=elif_tok.location,
        )

    # -- expressions ----------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            tok = self._advance()
            right = self._parse_and()
            left = ast.BinOp(op="or", left=left, right=right, loc=tok.location)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._at(TokenKind.AND_RANGE):
            tok = self._advance()
            right = self._parse_not()
            left = ast.BinOp(op="and", left=left, right=right, loc=tok.location)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._at(TokenKind.NOT):
            tok = self._advance()
            return ast.UnOp(op="not", operand=self._parse_not(), loc=tok.location)
        return self._parse_comparison()

    def _parse_bound(self) -> ast.Expr:
        """A loop bound: arithmetic only, so ``and`` ends the range."""
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        tok = self._peek()
        if tok.kind in _COMPARISON_TOKENS:
            self._advance()
            right = self._parse_additive()
            return ast.BinOp(
                op=_COMPARISON_TOKENS[tok.kind],
                left=left,
                right=right,
                loc=tok.location,
            )
        if tok.kind is TokenKind.ASSIGN:
            # FORTRAN-flavoured sources (and the paper's figures) write '='
            # for equality inside conditions; accept it there.
            self._advance()
            right = self._parse_additive()
            return ast.BinOp(op="==", left=left, right=right, loc=tok.location)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._at(TokenKind.PLUS, TokenKind.MINUS):
            tok = self._advance()
            right = self._parse_multiplicative()
            left = ast.BinOp(
                op=str(tok.value), left=left, right=right, loc=tok.location
            )
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._at(TokenKind.STAR, TokenKind.SLASH):
            tok = self._advance()
            right = self._parse_unary()
            left = ast.BinOp(
                op=str(tok.value), left=left, right=right, loc=tok.location
            )
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._at(TokenKind.MINUS):
            tok = self._advance()
            return ast.UnOp(op="-", operand=self._parse_unary(), loc=tok.location)
        if self._at(TokenKind.PLUS):
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(value=int(tok.value), loc=tok.location)
        if tok.kind is TokenKind.FLOAT:
            self._advance()
            return ast.FloatLit(value=float(tok.value), loc=tok.location)
        if tok.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLit(value=str(tok.value), loc=tok.location)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN, "parenthesised expression")
            return inner
        if tok.kind is TokenKind.IDENT:
            self._advance()
            name = str(tok.value)
            if self._at(TokenKind.LPAREN):
                self._advance()
                args: List[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self._parse_expr())
                    while self._at(TokenKind.COMMA):
                        self._advance()
                        args.append(self._parse_expr())
                self._expect(TokenKind.RPAREN, "argument list")
                if name in self._arrays:
                    return ast.ArrayRef(name=name, indices=args, loc=tok.location)
                return ast.Call(name=name, args=args, loc=tok.location)
            return ast.Var(name=name, loc=tok.location)
        raise ParseError(
            f"expected an expression, found {tok.kind.value}", tok.location
        )


def parse(source: str, filename: str = "<input>") -> ast.SourceFile:
    """Parse MiniF source text into a :class:`~repro.lang.ast.SourceFile`."""
    return Parser(tokenize(source, filename)).parse_file()


def parse_unit(source: str, filename: str = "<input>") -> ast.Unit:
    """Parse a source containing exactly one unit and return it."""
    file = parse(source, filename)
    if len(file.units) != 1:
        raise ParseError(
            f"expected exactly one program unit, found {len(file.units)}"
        )
    return file.units[0]
