"""Hand-written lexer for MiniF.

The lexer is line-oriented like FORTRAN: statement boundaries are newlines
(collapsed, so blank lines are free), and ``!`` starts a comment running to
end of line.  Identifiers are case-insensitive and normalised to lower case.
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_SINGLE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    ":": TokenKind.COLON,
}


class Lexer:
    """Converts MiniF source text into a token stream.

    Use :func:`tokenize` for the common case; the class exists so tests can
    poke at intermediate state and so errors carry a filename.
    """

    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- character-level helpers ------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    # -- token-level scanning ---------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens, ending with a single EOF token."""
        pending_newline = False
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r":
                self._advance()
                continue
            if ch == "!" and self._peek(1) != "=":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "\n":
                self._advance()
                pending_newline = True
                continue
            if pending_newline:
                pending_newline = False
                yield Token(TokenKind.NEWLINE, "\n", self._loc())
            yield self._scan_token()
        yield Token(TokenKind.NEWLINE, "\n", self._loc())
        yield Token(TokenKind.EOF, "", self._loc())

    def _scan_token(self) -> Token:
        loc = self._loc()
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._scan_number(loc)
        if ch.isalpha() or ch == "_":
            return self._scan_word(loc)
        if ch == '"' or ch == "'":
            return self._scan_string(loc)
        # Multi-character operators first.
        two = ch + self._peek(1)
        if two == "==":
            self._advance(), self._advance()
            return Token(TokenKind.EQ, "==", loc)
        if two in ("<>", "!="):
            self._advance(), self._advance()
            return Token(TokenKind.NE, "<>", loc)
        if two == "<=":
            self._advance(), self._advance()
            return Token(TokenKind.LE, "<=", loc)
        if two == ">=":
            self._advance(), self._advance()
            return Token(TokenKind.GE, ">=", loc)
        if ch == "<":
            self._advance()
            return Token(TokenKind.LT, "<", loc)
        if ch == ">":
            self._advance()
            return Token(TokenKind.GT, ">", loc)
        if ch == "=":
            self._advance()
            return Token(TokenKind.ASSIGN, "=", loc)
        if ch in _SINGLE_CHAR:
            self._advance()
            return Token(_SINGLE_CHAR[ch], ch, loc)
        raise LexError(f"unexpected character {ch!r}", loc)

    def _scan_number(self, loc: SourceLocation) -> Token:
        text = []
        is_float = False
        while self._peek().isdigit():
            text.append(self._advance())
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            text.append(self._advance())
            while self._peek().isdigit():
                text.append(self._advance())
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            text.append(self._advance())
            if self._peek() in "+-":
                text.append(self._advance())
            while self._peek().isdigit():
                text.append(self._advance())
        literal = "".join(text)
        if is_float:
            return Token(TokenKind.FLOAT, float(literal), loc)
        return Token(TokenKind.INT, int(literal), loc)

    def _scan_word(self, loc: SourceLocation) -> Token:
        text = []
        while self._peek().isalnum() or self._peek() == "_":
            text.append(self._advance())
        word = "".join(text).lower()
        kind = KEYWORDS.get(word)
        if kind is not None:
            return Token(kind, word, loc)
        return Token(TokenKind.IDENT, word, loc)

    def _scan_string(self, loc: SourceLocation) -> Token:
        quote = self._advance()
        text = []
        while self._peek() and self._peek() != quote:
            if self._peek() == "\n":
                raise LexError("unterminated string literal", loc)
            text.append(self._advance())
        if not self._peek():
            raise LexError("unterminated string literal", loc)
        self._advance()
        return Token(TokenKind.STRING, "".join(text), loc)


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``source`` and return the full token list (EOF-terminated)."""
    return list(Lexer(source, filename).tokens())
