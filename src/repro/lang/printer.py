"""Unparser for MiniF ASTs.

``print_unit``/``print_expr`` reproduce valid MiniF source from an AST, so
transformed programs (the output of :mod:`repro.split`) can be shown to users
in the same notation as the paper's figures, and so round-trip tests can
check ``parse(print(parse(s)))`` stability.
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "  "

#: Relative binding strength, used to parenthesise only where needed.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 3,
    "<>": 3,
    "<": 3,
    "<=": 3,
    ">": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
}


def print_expr(expr: ast.Expr, parent_prec: int = 0) -> str:
    """Render ``expr`` as MiniF source text."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.FloatLit):
        text = repr(expr.value)
        return text
    if isinstance(expr, ast.StringLit):
        return f'"{expr.value}"'
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.ArrayRef):
        args = ", ".join(print_expr(i) for i in expr.indices)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.Call):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, ast.UnOp):
        inner = print_expr(expr.operand, parent_prec=6)
        if expr.op == "not":
            return f"not {inner}"
        return f"-{inner}"
    if isinstance(expr, ast.BinOp):
        prec = _PRECEDENCE[expr.op]
        left = print_expr(expr.left, parent_prec=prec)
        # Right operand of same precedence needs parens for - and /.
        right_prec = prec + 1 if expr.op in ("-", "/") else prec
        right = print_expr(expr.right, parent_prec=right_prec)
        text = f"{left} {expr.op} {right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"cannot print expression node {type(expr).__name__}")


def _print_range(rng: ast.DoRange) -> str:
    text = f"{print_expr(rng.lo)}, {print_expr(rng.hi)}"
    if rng.step is not None:
        text += f", {print_expr(rng.step)}"
    return text


def print_stmt(stmt: ast.Stmt, indent: int = 0) -> List[str]:
    """Render ``stmt`` as a list of source lines."""
    pad = _INDENT * indent
    if isinstance(stmt, ast.Assign):
        return [f"{pad}{print_expr(stmt.target)} = {print_expr(stmt.value)}"]
    if isinstance(stmt, ast.CallStmt):
        args = ", ".join(print_expr(a) for a in stmt.args)
        return [f"{pad}call {stmt.name}({args})"]
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [f"{pad}return"]
        return [f"{pad}return {print_expr(stmt.value)}"]
    if isinstance(stmt, ast.DoLoop):
        header = f"{pad}do {stmt.var} = " + " and ".join(
            _print_range(r) for r in stmt.ranges
        )
        if stmt.where is not None:
            header += f" where ({print_expr(stmt.where)})"
        lines = [header]
        for inner in stmt.body:
            lines.extend(print_stmt(inner, indent + 1))
        lines.append(f"{pad}end do")
        return lines
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({print_expr(stmt.cond)}) then"]
        for inner in stmt.then_body:
            lines.extend(print_stmt(inner, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}else")
            for inner in stmt.else_body:
                lines.extend(print_stmt(inner, indent + 1))
        lines.append(f"{pad}end if")
        return lines
    raise TypeError(f"cannot print statement node {type(stmt).__name__}")


def print_decl(decl: ast.Decl, indent: int = 0) -> str:
    pad = _INDENT * indent
    if not decl.dims:
        return f"{pad}{decl.base_type} {decl.name}"
    dims = []
    for dim in decl.dims:
        if isinstance(dim.lo, ast.IntLit) and dim.lo.value == 1:
            dims.append(print_expr(dim.hi))
        else:
            dims.append(f"{print_expr(dim.lo)}:{print_expr(dim.hi)}")
    return f"{pad}{decl.base_type} {decl.name}({', '.join(dims)})"


def print_unit(unit: ast.Unit) -> str:
    """Render a program unit as MiniF source text."""
    if isinstance(unit, ast.Program):
        header = f"program {unit.name}"
        footer = "end program"
    elif isinstance(unit, ast.Subroutine):
        header = f"subroutine {unit.name}({', '.join(unit.params)})"
        footer = "end subroutine"
    elif isinstance(unit, ast.Function):
        header = (
            f"{unit.result_type} function {unit.name}"
            f"({', '.join(unit.params)})"
        )
        footer = "end function"
    else:
        raise TypeError(f"cannot print unit node {type(unit).__name__}")
    lines = [header]
    for decl in unit.decls:
        lines.append(print_decl(decl, indent=1))
    for stmt in unit.body:
        lines.extend(print_stmt(stmt, indent=1))
    lines.append(footer)
    return "\n".join(lines) + "\n"


def print_file(file: ast.SourceFile) -> str:
    """Render a whole source file."""
    return "\n".join(print_unit(u) for u in file.units)


def print_stmts(stmts: List[ast.Stmt], indent: int = 0) -> str:
    """Render a statement list (used when showing split output fragments)."""
    lines: List[str] = []
    for stmt in stmts:
        lines.extend(print_stmt(stmt, indent))
    return "\n".join(lines)
