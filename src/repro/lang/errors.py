"""Source-located error types for the MiniF frontend.

Every diagnostic raised by the lexer, parser, or later analyses carries a
:class:`SourceLocation` so that messages can point back into the original
program text, in the style of a conventional compiler driver.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a MiniF source file.

    Attributes:
        line: 1-based line number.
        column: 1-based column number.
        filename: name used in diagnostics; defaults to ``<input>``.
    """

    line: int
    column: int
    filename: str = "<input>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class MiniFError(Exception):
    """Base class for all MiniF frontend diagnostics."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(MiniFError):
    """Raised when the lexer encounters a character it cannot tokenize."""


class ParseError(MiniFError):
    """Raised when the parser encounters an unexpected token."""


class SemanticError(MiniFError):
    """Raised for declaration and type errors caught after parsing."""
