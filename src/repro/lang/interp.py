"""A reference interpreter for MiniF.

Used throughout the test suite to check that transformed programs compute
the same values as the originals — the strongest evidence a transformation
is semantics-preserving.  Arrays are Python lists (of lists), 1-based:
``x(i)`` reads ``env["x"][i-1]``.

Intrinsics map to Python callables; examples and tests may pass extra
``functions`` to model the paper's opaque application kernels.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from . import ast

DEFAULT_FUNCTIONS: Dict[str, Callable] = {
    "abs": abs,
    "min": min,
    "max": max,
    "mod": lambda a, b: a % b,
    "sign": lambda a, b: math.copysign(a, b),
    "int": int,
    "real": float,
    "sqrt": math.sqrt,
    "exp": math.exp,
    "log": math.log,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "atan": math.atan,
}


class InterpreterError(RuntimeError):
    """Raised on dynamic errors (unknown function, bad subscript, ...)."""


class _ReturnSignal(Exception):
    def __init__(self, value: Any = None):
        self.value = value


def eval_expr(
    expr: ast.Expr,
    env: Mapping[str, Any],
    functions: Optional[Mapping[str, Callable]] = None,
) -> Any:
    """Evaluate an expression under ``env``."""
    fns = _merged(functions)
    return _eval(expr, env, fns)


def run_stmts(
    stmts: Sequence[ast.Stmt],
    env: Dict[str, Any],
    functions: Optional[Mapping[str, Callable]] = None,
) -> Dict[str, Any]:
    """Execute statements, mutating and returning ``env``."""
    fns = _merged(functions)
    try:
        for stmt in stmts:
            _exec(stmt, env, fns)
    except _ReturnSignal:
        pass
    return env


def run_unit(
    unit: ast.Unit,
    env: Dict[str, Any],
    functions: Optional[Mapping[str, Callable]] = None,
) -> Dict[str, Any]:
    """Execute a program unit's body under ``env``.

    Arrays whose declarations have constant bounds and that are missing
    from ``env`` are allocated and zero-filled.
    """
    for decl in unit.decls:
        if decl.name in env:
            continue
        if decl.is_array:
            shape = []
            ok = True
            for dim in decl.dims:
                try:
                    lo = _eval(dim.lo, env, _merged(None))
                    hi = _eval(dim.hi, env, _merged(None))
                except InterpreterError:
                    ok = False
                    break
                shape.append(int(hi) - int(lo) + 1)
            if ok:
                env[decl.name] = _alloc(shape)
        else:
            env[decl.name] = 0 if decl.base_type == "integer" else 0.0
    return run_stmts(unit.body, env, functions)


def _alloc(shape: List[int]) -> Any:
    if len(shape) == 1:
        return [0.0] * shape[0]
    return [_alloc(shape[1:]) for _ in range(shape[0])]


def _merged(functions: Optional[Mapping[str, Callable]]) -> Dict[str, Callable]:
    merged = dict(DEFAULT_FUNCTIONS)
    if functions:
        merged.update(functions)
    return merged


def _eval(expr: ast.Expr, env: Mapping[str, Any], fns: Mapping[str, Callable]) -> Any:
    if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.StringLit)):
        return expr.value
    if isinstance(expr, ast.Var):
        try:
            return env[expr.name]
        except KeyError:
            raise InterpreterError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, ast.ArrayRef):
        return _load(expr, env, fns)
    if isinstance(expr, ast.Call):
        fn = fns.get(expr.name)
        if fn is None:
            raise InterpreterError(f"unknown function {expr.name!r}")
        return fn(*[_eval(a, env, fns) for a in expr.args])
    if isinstance(expr, ast.UnOp):
        value = _eval(expr.operand, env, fns)
        if expr.op == "-":
            return -value
        return not _truth(value)
    if isinstance(expr, ast.BinOp):
        return _binop(expr, env, fns)
    raise InterpreterError(f"cannot evaluate {type(expr).__name__}")


def _binop(expr: ast.BinOp, env: Mapping[str, Any], fns: Mapping[str, Callable]) -> Any:
    op = expr.op
    if op == "and":
        return _truth(_eval(expr.left, env, fns)) and _truth(
            _eval(expr.right, env, fns)
        )
    if op == "or":
        return _truth(_eval(expr.left, env, fns)) or _truth(
            _eval(expr.right, env, fns)
        )
    left = _eval(expr.left, env, fns)
    right = _eval(expr.right, env, fns)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int):
            return left // right  # FORTRAN integer division
        return left / right
    if op == "==":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise InterpreterError(f"unknown operator {op!r}")


def _truth(value: Any) -> bool:
    return bool(value)


def _load(ref: ast.ArrayRef, env: Mapping[str, Any], fns) -> Any:
    target = env.get(ref.name)
    if target is None:
        raise InterpreterError(f"unbound array {ref.name!r}")
    for index_expr in ref.indices:
        index = int(_eval(index_expr, env, fns))
        try:
            target = target[index - 1]
        except IndexError:
            raise InterpreterError(
                f"subscript {index} out of range for {ref.name!r}"
            ) from None
    return target


def _store(ref: ast.ArrayRef, value: Any, env: Mapping[str, Any], fns) -> None:
    target = env.get(ref.name)
    if target is None:
        raise InterpreterError(f"unbound array {ref.name!r}")
    indices = [int(_eval(i, env, fns)) for i in ref.indices]
    for index in indices[:-1]:
        target = target[index - 1]
    try:
        target[indices[-1] - 1] = value
    except IndexError:
        raise InterpreterError(
            f"subscript {indices[-1]} out of range for {ref.name!r}"
        ) from None


def _exec(stmt: ast.Stmt, env: Dict[str, Any], fns: Mapping[str, Callable]) -> None:
    if isinstance(stmt, ast.Assign):
        value = _eval(stmt.value, env, fns)
        if isinstance(stmt.target, ast.Var):
            env[stmt.target.name] = value
        else:
            _store(stmt.target, value, env, fns)
    elif isinstance(stmt, ast.If):
        if _truth(_eval(stmt.cond, env, fns)):
            for inner in stmt.then_body:
                _exec(inner, env, fns)
        else:
            for inner in stmt.else_body:
                _exec(inner, env, fns)
    elif isinstance(stmt, ast.DoLoop):
        for value in _iteration_values(stmt, env, fns):
            env[stmt.var] = value
            if stmt.where is not None and not _truth(
                _eval(stmt.where, env, fns)
            ):
                continue
            for inner in stmt.body:
                _exec(inner, env, fns)
    elif isinstance(stmt, ast.CallStmt):
        fn = fns.get(stmt.name)
        if fn is None:
            raise InterpreterError(f"unknown subroutine {stmt.name!r}")
        fn(*[_eval(a, env, fns) for a in stmt.args])
    elif isinstance(stmt, ast.Return):
        raise _ReturnSignal(
            _eval(stmt.value, env, fns) if stmt.value is not None else None
        )
    else:  # pragma: no cover - defensive
        raise InterpreterError(f"cannot execute {type(stmt).__name__}")


def _iteration_values(loop: ast.DoLoop, env, fns) -> List[int]:
    values: List[int] = []
    for rng in loop.ranges:
        lo = int(_eval(rng.lo, env, fns))
        hi = int(_eval(rng.hi, env, fns))
        step = 1
        if rng.step is not None:
            step = int(_eval(rng.step, env, fns))
        values.extend(range(lo, hi + 1, step))
    return values
