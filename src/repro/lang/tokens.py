"""Token definitions for the MiniF lexer.

MiniF is the small FORTRAN-flavoured input language used throughout this
reproduction.  It is rich enough to express every example program in the
paper (Figures 1-5) — ``do`` loops with ``where`` clauses and discontinuous
ranges, conditionals, 1-D/2-D arrays, reductions, and calls — while staying
small enough that the symbolic analyses of Section 3 can be complete.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """Terminal symbols of the MiniF grammar."""

    # Literals and identifiers.
    IDENT = "identifier"
    INT = "integer literal"
    FLOAT = "float literal"
    STRING = "string literal"

    # Keywords.
    PROGRAM = "program"
    SUBROUTINE = "subroutine"
    FUNCTION = "function"
    END = "end"
    DO = "do"
    WHERE = "where"
    AND_RANGE = "and"  # joins discontinuous do-ranges; also logical 'and'
    IF = "if"
    THEN = "then"
    ELSE = "else"
    ELSEIF = "elseif"
    CALL = "call"
    RETURN = "return"
    INTEGER = "integer"
    REAL = "real"
    LOGICAL = "logical"
    OR = "or"
    NOT = "not"

    # Punctuation and operators.
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    ASSIGN = "="
    EQ = "=="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    COLON = ":"
    NEWLINE = "newline"
    EOF = "end of input"


#: Reserved words, mapped to their token kinds.  ``and`` is context-sensitive
#: (logical operator in expressions, range joiner in ``do`` headers); the
#: parser resolves the ambiguity, the lexer just emits ``AND_RANGE``.
KEYWORDS = {
    "program": TokenKind.PROGRAM,
    "subroutine": TokenKind.SUBROUTINE,
    "function": TokenKind.FUNCTION,
    "end": TokenKind.END,
    "do": TokenKind.DO,
    "where": TokenKind.WHERE,
    "and": TokenKind.AND_RANGE,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "elseif": TokenKind.ELSEIF,
    "call": TokenKind.CALL,
    "return": TokenKind.RETURN,
    "integer": TokenKind.INTEGER,
    "real": TokenKind.REAL,
    "logical": TokenKind.LOGICAL,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source location.

    ``value`` carries the decoded payload for literals (``int`` or ``float``)
    and the identifier text for :attr:`TokenKind.IDENT`; for fixed-spelling
    tokens it repeats the spelling.
    """

    kind: TokenKind
    value: Union[str, int, float]
    location: SourceLocation

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.value!r}, {self.location})"
