"""Abstract syntax tree for MiniF.

All nodes are dataclasses with ``eq=False`` so that they hash by identity;
the analyses in :mod:`repro.analysis` key tables on AST node identity (two
textually identical statements are distinct program points).

The tree deliberately mirrors the constructs used in the paper's figures:

* ``do col = 1, n where (mask(col) <> 0)`` — Figure 1's guarded loop,
* ``do i = 1, col-2 and col, n`` — Figure 3's discontinuous range,
* array declarations with symbolic bounds (``real q(n, n)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple, Union

from .errors import SourceLocation


@dataclass(eq=False)
class Node:
    """Base class for all AST nodes."""

    loc: Optional[SourceLocation] = field(default=None, repr=False, kw_only=True)

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes, in source order."""
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Expr(Node):
    """Base class for expressions."""


@dataclass(eq=False)
class IntLit(Expr):
    value: int


@dataclass(eq=False)
class FloatLit(Expr):
    value: float


@dataclass(eq=False)
class StringLit(Expr):
    value: str


@dataclass(eq=False)
class Var(Expr):
    """A scalar variable reference (or array name used as a whole)."""

    name: str


@dataclass(eq=False)
class ArrayRef(Expr):
    """An element reference ``name(i, j, ...)``."""

    name: str
    indices: List[Expr]

    def children(self) -> Iterator[Node]:
        return iter(self.indices)


@dataclass(eq=False)
class Call(Expr):
    """A function call in expression position."""

    name: str
    args: List[Expr]

    def children(self) -> Iterator[Node]:
        return iter(self.args)


#: Binary operator spellings, as stored in :class:`BinOp`.
BINARY_OPS = ("+", "-", "*", "/", "==", "<>", "<", "<=", ">", ">=", "and", "or")
COMPARISON_OPS = ("==", "<>", "<", "<=", ">", ">=")
#: Map each comparison to its negation, used when propagating branch
#: conditions down the false edge (Section 3.1, step 6).
NEGATED_COMPARISON = {
    "==": "<>",
    "<>": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


@dataclass(eq=False)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass(eq=False)
class UnOp(Expr):
    op: str  # "-" or "not"
    operand: Expr

    def children(self) -> Iterator[Node]:
        yield self.operand


LValue = Union[Var, ArrayRef]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Stmt(Node):
    """Base class for statements."""


@dataclass(eq=False)
class Assign(Stmt):
    target: LValue
    value: Expr

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


@dataclass(eq=False)
class DoRange(Node):
    """One contiguous piece of a ``do`` header: ``lo, hi [, step]``."""

    lo: Expr
    hi: Expr
    step: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        yield self.lo
        yield self.hi
        if self.step is not None:
            yield self.step


@dataclass(eq=False)
class DoLoop(Stmt):
    """A ``do`` loop, possibly with multiple ranges and a ``where`` guard.

    ``do i = 1, a-1 and a+1, n where (p(i) <> 0)`` parses to two ranges and
    a guard; the loop body runs for each value in the union of the ranges
    for which the guard holds (the paper's ``do ... where`` shorthand for an
    ``if`` wrapping the whole body).
    """

    var: str
    ranges: List[DoRange]
    body: List[Stmt]
    where: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        yield from self.ranges
        if self.where is not None:
            yield self.where
        yield from self.body


@dataclass(eq=False)
class If(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield from self.then_body
        yield from self.else_body


@dataclass(eq=False)
class CallStmt(Stmt):
    """A ``call name(args)`` statement (subroutine invocation)."""

    name: str
    args: List[Expr]

    def children(self) -> Iterator[Node]:
        return iter(self.args)


@dataclass(eq=False)
class Return(Stmt):
    value: Optional[Expr] = None

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


# ---------------------------------------------------------------------------
# Declarations and program units
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class DimSpec(Node):
    """One array dimension ``lo:hi`` (``lo`` defaults to 1)."""

    lo: Expr
    hi: Expr

    def children(self) -> Iterator[Node]:
        yield self.lo
        yield self.hi


@dataclass(eq=False)
class Decl(Node):
    """A variable declaration; ``dims`` is empty for scalars."""

    name: str
    base_type: str  # "integer" | "real" | "logical"
    dims: List[DimSpec] = field(default_factory=list)

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def rank(self) -> int:
        return len(self.dims)

    def children(self) -> Iterator[Node]:
        return iter(self.dims)


@dataclass(eq=False)
class Unit(Node):
    """Base class for program units."""

    name: str = ""
    params: List[str] = field(default_factory=list)
    decls: List[Decl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.decls
        yield from self.body

    def decl_for(self, name: str) -> Optional[Decl]:
        """Look up the declaration of ``name`` in this unit, if any."""
        for decl in self.decls:
            if decl.name == name:
                return decl
        return None

    def arrays(self) -> List[Decl]:
        """All array declarations, in declaration order."""
        return [d for d in self.decls if d.is_array]


@dataclass(eq=False)
class Program(Unit):
    """The main program unit."""


@dataclass(eq=False)
class Subroutine(Unit):
    """A subroutine (no return value)."""


@dataclass(eq=False)
class Function(Unit):
    """A function; the return value is assigned to the function's name."""

    result_type: str = "real"


@dataclass(eq=False)
class SourceFile(Node):
    """A parsed source file: one or more program units."""

    units: List[Unit] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        return iter(self.units)

    @property
    def main(self) -> Optional[Program]:
        for unit in self.units:
            if isinstance(unit, Program):
                return unit
        return None

    def unit_named(self, name: str) -> Optional[Unit]:
        for unit in self.units:
            if unit.name == name:
                return unit
        return None


# ---------------------------------------------------------------------------
# Visitors
# ---------------------------------------------------------------------------


class NodeVisitor:
    """Classic double-dispatch visitor over the AST.

    Subclasses define ``visit_<ClassName>`` methods; unhandled nodes fall
    through to :meth:`generic_visit`, which visits children.
    """

    def visit(self, node: Node):
        method = getattr(self, f"visit_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self.generic_visit(node)

    def generic_visit(self, node: Node):
        for child in node.children():
            self.visit(child)


def variables_read(expr: Expr) -> List[str]:
    """Names of scalar variables read by ``expr`` (array index variables
    included; array base names excluded — aggregate accesses are tracked
    separately by the descriptor machinery)."""
    names: List[str] = []
    for node in expr.walk():
        if isinstance(node, Var):
            names.append(node.name)
    return names


def array_refs(node: Node) -> List[ArrayRef]:
    """All :class:`ArrayRef` nodes in ``node``, preorder."""
    return [n for n in node.walk() if isinstance(n, ArrayRef)]


def calls_in(node: Node) -> List[Tuple[str, List[Expr]]]:
    """All calls (expression calls and call statements) under ``node``."""
    out: List[Tuple[str, List[Expr]]] = []
    for n in node.walk():
        if isinstance(n, Call):
            out.append((n.name, n.args))
        elif isinstance(n, CallStmt):
            out.append((n.name, n.args))
    return out
