"""Intrinsic functions known to the MiniF frontend.

The analyses need three facts about a called function when its body is not
available: whether it is *pure* (no memory effects beyond its return value),
a rough *cost* in abstract work units (used by the split heuristics of
Section 3.3.1 and by profiling), and whether it *reads* its array arguments
only (never writes them).  Intrinsics cover the usual FORTRAN repertoire
plus a few opaque "science" kernels used by the example programs, standing
in for the paper's application code (reconstruction kernels, cloud physics,
etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class Intrinsic:
    """Metadata for a function the compiler cannot see into."""

    name: str
    pure: bool
    cost: float  # abstract work units per invocation
    reads_arrays_only: bool = True


_INTRINSICS: Dict[str, Intrinsic] = {}


def _register(name: str, pure: bool, cost: float, reads_arrays_only: bool = True) -> None:
    _INTRINSICS[name] = Intrinsic(name, pure, cost, reads_arrays_only)


# Cheap arithmetic intrinsics.
for _name in ("abs", "min", "max", "mod", "sign", "int", "real"):
    _register(_name, pure=True, cost=1.0)
# Transcendentals.
for _name in ("sqrt", "exp", "log", "sin", "cos", "tan", "atan"):
    _register(_name, pure=True, cost=4.0)
# Opaque science kernels used by the example programs.  These model the
# paper's application subroutines: expensive, pure, read-only on arrays.
_register("f", pure=True, cost=10.0)
_register("g", pure=True, cost=10.0)
_register("reconstruct", pure=True, cost=50.0)
_register("backproject", pure=True, cost=80.0)
_register("cloud_physics", pure=True, cost=120.0)
_register("advect", pure=True, cost=30.0)
_register("interact", pure=True, cost=25.0)
_register("device_eval", pure=True, cost=40.0)


def lookup(name: str) -> Optional[Intrinsic]:
    """Return intrinsic metadata for ``name``, or ``None`` if unknown."""
    return _INTRINSICS.get(name)


def is_pure(name: str) -> bool:
    """True when ``name`` is a known pure intrinsic.

    Unknown functions are treated as impure, which makes every downstream
    analysis conservative (the paper: "descriptors interfere unless we can
    prove otherwise").
    """
    info = _INTRINSICS.get(name)
    return info is not None and info.pure


def call_cost(name: str, default: float = 20.0) -> float:
    """Estimated work units for one invocation of ``name``."""
    info = _INTRINSICS.get(name)
    if info is None:
        return default
    return info.cost


def register_intrinsic(
    name: str, pure: bool, cost: float, reads_arrays_only: bool = True
) -> None:
    """Register (or overwrite) intrinsic metadata.

    Example programs use this to teach the frontend about their opaque
    kernels without having to write MiniF bodies for them.
    """
    _register(name, pure=pure, cost=cost, reads_arrays_only=reads_arrays_only)
