"""MiniF: the FORTRAN-flavoured input language of the reproduction.

Public surface:

* :func:`parse` / :func:`parse_unit` — text to AST,
* :mod:`repro.lang.ast` — node classes,
* :func:`print_unit` / :func:`print_stmts` — AST back to text,
* :mod:`repro.lang.builtins` — intrinsic metadata.
"""

from . import ast
from .builtins import call_cost, is_pure, lookup, register_intrinsic
from .errors import LexError, MiniFError, ParseError, SemanticError, SourceLocation
from .lexer import tokenize
from .parser import parse, parse_unit
from .printer import print_expr, print_file, print_stmt, print_stmts, print_unit

__all__ = [
    "ast",
    "parse",
    "parse_unit",
    "tokenize",
    "print_expr",
    "print_stmt",
    "print_stmts",
    "print_unit",
    "print_file",
    "MiniFError",
    "LexError",
    "ParseError",
    "SemanticError",
    "SourceLocation",
    "lookup",
    "is_pure",
    "call_cost",
    "register_intrinsic",
]
