"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE``      — run the full compiler on a MiniF source file and
  print the transformation report, the Delirium coordination graph, or
  the transformed FORTRAN sections;
* ``descriptors FILE``  — print the symbolic data descriptor of every
  top-level primitive computation;
* ``simulate APP``      — run one of the paper's applications on the
  simulated machine and report speedup/efficiency;
* ``trace TARGET``      — run a MiniF source file or a workload with the
  ``repro.obs`` tracer attached and export a Chrome ``trace_event`` JSON
  (one lane per simulated processor; load in ``chrome://tracing`` or
  https://ui.perfetto.dev), a metrics report (per-processor utilization,
  sched/comm/idle overhead breakdown, load imbalance), and optionally an
  ASCII per-processor timeline;
* ``run TARGET``        — execute a MiniF source file or a workload
  through :mod:`repro.api` on a chosen backend: ``--backend sim`` (the
  discrete-event simulator) or ``--backend mp`` (real child processes
  via ``multiprocessing``, TAPER-scheduled).  ``--trace-out`` exports a
  Chrome trace either way — simulated clock or wall clock, one lane per
  worker.  mp runs recover from worker death and kernel exceptions by
  default (``--on-fault retry``); ``--inject-fault kill:1:2`` et al.
  drive the deterministic chaos harness (see README "Fault tolerance").
  ``--checkpoint DIR`` journals completed chunks so a killed run
  restarts from where it stopped with ``--resume DIR``; ``--speculate``
  duplicates straggler chunks onto idle workers; ``--wall-clock-limit``
  stops gracefully with a resumable partial result (see README
  "Resumable runs").  ``run stream --backend mp`` ingests a paginated
  record stream under a bounded in-flight window with watermark
  backpressure (``--window``, ``--high-watermark``; see README
  "Streaming ingestion").  ``--backend dist --hosts h1:p,h2:p`` runs
  the same coordinator loop over remote ``repro hostagent`` fleets
  (see README "Multi-host runs");
* ``hostagent``          — expose this host's workers to a remote
  ``run --backend dist`` coordinator over TCP (``--workers``,
  ``--port``, ``--bind``, ``--shm-cache-bytes``);
* ``serve``              — run the resident job daemon: one warm mp
  worker pool on a Unix socket, multiplexing submitted jobs with Eq. 1
  cross-job worker rationing (see README "Running as a service");
* ``submit TARGET``     — send a job to a running daemon
  (``--priority``, ``--wait``);
* ``status [JOB]``      — query a running daemon.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_compile(args: argparse.Namespace) -> int:
    from .compiler import compile_source

    with open(args.file) as handle:
        source = handle.read()
    programs = compile_source(
        source,
        apply_splits=not args.no_split,
        apply_pipelining=not args.no_pipeline,
    )
    for program in programs:
        if args.emit == "report":
            print(program.report())
        elif args.emit == "delirium":
            print(program.delirium_text, end="")
        elif args.emit == "sections":
            for name, text in program.transformed_sections().items():
                print(f"! section {name}")
                print(text)
                print()
    return 0


def _cmd_descriptors(args: argparse.Namespace) -> int:
    from .analysis import analyze_unit
    from .descriptors import DescriptorBuilder
    from .lang import parse, print_stmts
    from .split import SplitContext, decompose

    with open(args.file) as handle:
        source = handle.read()
    for unit in parse(source).units:
        print(f"! unit {unit.name}")
        context = SplitContext(unit)
        for primitive in decompose(unit.body, context):
            first_line = print_stmts(primitive.stmts).splitlines()[0]
            print(f"primitive {primitive.index} ({primitive.kind}): {first_line}")
            for line in str(primitive.descriptor).splitlines():
                print(f"  {line}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .apps import ALL_WORKLOADS

    workload_class = ALL_WORKLOADS.get(args.app)
    if workload_class is None:
        print(
            f"unknown application {args.app!r}; pick from "
            f"{', '.join(sorted(ALL_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    header_printed = False
    for mode in args.modes:
        workload = workload_class(steps=args.steps)
        for p in args.processors:
            result = workload.run(p, mode)
            if not header_printed:
                print(f"{'app':>10} {'mode':>8} {'p':>6} {'speedup':>9} {'eff':>6}")
                header_printed = True
            print(
                f"{args.app:>10} {mode:>8} {p:>6} "
                f"{result.speedup:>9.0f} {result.efficiency:>6.2f}"
            )
    return 0


def _trace_source_file(args: argparse.Namespace, tracer, config) -> float:
    """Compile a MiniF file and execute its coordination graph wave by
    wave — each wave of simultaneously-ready parallel operations runs
    under the Eq. 1 allocator + distributed TAPER with the tracer
    attached.  Returns the accumulated makespan."""
    import random

    from .compiler import compile_source
    from .runtime.executor import run_concurrent_ops
    from .runtime.task import ParallelOp

    with open(args.target) as handle:
        source = handle.read()
    program = compile_source(source)[0]
    graph = program.graph
    # Synthetic task costs (as in examples/quickstart.py): masked/guarded
    # operations are irregular, everything else regular.
    rng = random.Random(args.seed)
    op_tasks = {}
    for node in graph.nodes:
        if node.pipeline_role is not None:
            continue  # pipelined stages mirror ops already present
        n_tasks = args.tasks if node.is_parallel else 8
        if node.where is not None:
            costs = [rng.uniform(10.0, 50.0) for _ in range(n_tasks)]
        else:
            costs = [10.0] * n_tasks
        op_tasks[node.id] = ParallelOp(name=node.name, costs=costs)
    remaining = {
        node.id: len(graph.predecessors(node)) for node in graph.nodes
    }
    ready = sorted(nid for nid, count in remaining.items() if count == 0)
    makespan = 0.0
    while ready:
        ops = [
            op_tasks[nid]
            for nid in ready
            if nid in op_tasks and op_tasks[nid].size
        ]
        if ops:
            result = run_concurrent_ops(
                ops, config.processors, config, tracer=tracer
            )
            makespan += result.makespan
            tracer.advance(result.makespan)
        done, ready = ready, []
        for nid in done:
            for successor in graph.successors(graph.node(nid)):
                remaining[successor.id] -= 1
                if remaining[successor.id] == 0:
                    ready.append(successor.id)
        ready.sort()
    return makespan


def _cmd_trace(args: argparse.Namespace) -> int:
    import os

    from .apps import ALL_WORKLOADS
    from .obs import (
        Tracer,
        aggregate,
        metrics_summary,
        render_timeline,
        write_chrome_trace,
        write_metrics_json,
    )
    from .runtime import MachineConfig

    tracer = Tracer()
    p = args.processors
    config = MachineConfig(processors=p)
    if args.target in ALL_WORKLOADS:
        workload = ALL_WORKLOADS[args.target](steps=args.steps)
        result = workload.run(p, args.mode, config, tracer=tracer)
        makespan = result.makespan
        label = f"{args.target} ({args.mode}, {args.steps} steps)"
    elif os.path.exists(args.target):
        makespan = _trace_source_file(args, tracer, config)
        label = os.path.basename(args.target)
    else:
        print(
            f"unknown trace target {args.target!r}: not a workload "
            f"({', '.join(sorted(ALL_WORKLOADS))}) or a source file",
            file=sys.stderr,
        )
        return 2
    report = aggregate(tracer.events, processors=p)
    write_chrome_trace(tracer.events, args.out, processors=p)
    write_metrics_json(report, args.metrics)
    print(
        f"traced {label} on p={p}: {len(tracer.events)} events, "
        f"makespan {makespan:.1f} work units"
    )
    print(f"chrome trace -> {args.out} (chrome://tracing or ui.perfetto.dev)")
    print(f"metrics      -> {args.metrics}")
    print()
    print(metrics_summary(report))
    if args.timeline:
        print()
        print(
            render_timeline(
                tracer.events, processors=p, width=args.timeline_width
            )
        )
    return 0


#: Exit status for a run cancelled by SIGINT/SIGTERM (128 + SIGINT,
#: the shell convention for death-by-Ctrl-C).
EXIT_CANCELLED_SIGNAL = 130
#: Exit status for a run stopped by ``--wall-clock-limit`` (EX_TEMPFAIL:
#: partial result checkpointed, try again with ``--resume``).
EXIT_CANCELLED_WALL_CLOCK = 75


def _cmd_run(args: argparse.Namespace) -> int:
    from . import api
    from .runtime.checkpoint import load_run_target
    from .runtime.faults import FaultPlan, parse_fault_spec

    overrides = {}
    if args.mode:
        overrides["mode"] = args.mode
    if args.steps is not None:
        overrides["steps"] = args.steps
    if args.tasks is not None:
        overrides["tasks"] = args.tasks
    if args.stream:
        overrides["stream"] = True
    if args.stream_records is not None:
        overrides["stream_records"] = args.stream_records
    if args.records_per_task is not None:
        overrides["records_per_task"] = args.records_per_task
    if args.page_records is not None:
        overrides["page_records"] = args.page_records
    if args.page_tasks is not None:
        overrides["page_tasks"] = args.page_tasks
    fault_plan = None
    if args.inject_fault:
        try:
            fault_plan = FaultPlan(
                tuple(parse_fault_spec(spec) for spec in args.inject_fault)
            )
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    try:
        config = api.RunConfig(
            processors=args.procs,
            backend=args.backend,
            hosts=args.hosts,
            policy=args.policy,
            cost_source=args.cost_source,
            mp_timeout=args.timeout,
            seed=args.seed,
            fault_plan=fault_plan,
            on_fault=args.on_fault,
            max_retries=args.max_retries,
            heartbeat_interval=args.heartbeat,
            checkpoint_dir=args.resume or args.checkpoint,
            checkpoint_interval=args.checkpoint_interval,
            resume=bool(args.resume),
            speculation_factor=args.speculate,
            wall_clock_limit=args.wall_clock_limit,
            data_plane=args.data_plane,
            batching=args.batching,
            stream_window=args.window,
            stream_high_watermark=args.high_watermark,
            stream_low_watermark=args.low_watermark,
        )
        if args.resume:
            # Re-apply the manifest's scheduling fields (processors,
            # policy, ...) so forgetting to restate them can't trip the
            # fingerprint check; pull the stored target if none given.
            config = api.resume_config(args.resume, config)
            if args.target is None:
                stored = load_run_target(args.resume) or {}
                args.target = stored.get("target")
                for key, value in (stored.get("overrides") or {}).items():
                    overrides.setdefault(key, value)
            if args.target is None:
                print(
                    f"no stored run target in {args.resume}; pass the "
                    "original TARGET as well",
                    file=sys.stderr,
                )
                return 2
    except (ValueError, api.CheckpointError) as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.target is None:
        print("a run TARGET is required (unless --resume)", file=sys.stderr)
        return 2
    try:
        if args.trace_out or args.metrics_out:
            result, report = api.trace(args.target, config, **overrides)
        else:
            result, report = api.run(args.target, config, **overrides), None
    except (ValueError, api.CheckpointError) as error:
        print(str(error), file=sys.stderr)
        return 2
    print(result.summary())
    if report is not None:
        if args.trace_out:
            report.write_chrome_trace(args.trace_out)
            print(f"chrome trace -> {args.trace_out}")
        if args.metrics_out:
            report.write_metrics(args.metrics_out)
            print(f"metrics      -> {args.metrics_out}")
        print()
        print(report.summary())
    if result.cancelled:
        return (
            EXIT_CANCELLED_WALL_CLOCK
            if result.cancel_reason == "wall_clock_limit"
            else EXIT_CANCELLED_SIGNAL
        )
    return 0


def _cmd_hostagent(args: argparse.Namespace) -> int:
    from .runtime.backends import MpBackendError, run_hostagent

    try:
        run_hostagent(
            args.workers,
            port=args.port,
            bind=args.bind,
            start_method=args.start_method,
            shm_cache_bytes=args.shm_cache_bytes,
        )
    except (MpBackendError, OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _default_socket(state_dir: str) -> str:
    import os

    return os.path.join(state_dir, "serve.sock")


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .runtime.config import PoolConfig
    from .serve.server import JobServer

    socket_path = args.socket or _default_socket(args.state_dir)
    try:
        pool_config = PoolConfig(
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            respawn_backoff=args.respawn_backoff,
            max_respawns=args.max_respawns,
            idle_timeout=args.idle_timeout,
            shm_cache_bytes=args.shm_cache_bytes,
        )
        server = JobServer(
            processors=args.procs,
            socket_path=socket_path,
            state_dir=args.state_dir,
            queue_limit=args.queue_limit,
            max_running=args.max_running,
            start_method=args.start_method,
            pool_config=pool_config,
        )
    except (OSError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    stop = threading.Event()
    reason = {"value": "shutdown"}

    def _request_stop(signum, frame):
        reason["value"] = f"signal:{signal.Signals(signum).name}"
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, _request_stop)
    print(
        f"repro serve: pid={__import__('os').getpid()} "
        f"pool={args.procs} workers, socket={socket_path}, "
        f"state={args.state_dir}",
        flush=True,
    )
    while not stop.is_set():
        # The daemon also exits once a client shutdown request drains it.
        if server.draining:
            break
        stop.wait(0.2)
    status = server.drain(reason["value"])
    jobs = status.get("jobs", [])
    print(
        f"repro serve: drained ({reason['value']}): "
        f"{len(jobs)} job(s) tracked, "
        f"{sum(1 for j in jobs if j['state'] == 'done')} done, "
        f"{sum(1 for j in jobs if j['state'] == 'cancelled')} cancelled",
        flush=True,
    )
    for job in jobs:
        if job.get("resume_dir"):
            print(
                f"  {job['id']}: resume with `python -m repro run "
                f"--backend mp --resume {job['resume_dir']}`",
                flush=True,
            )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve.client import ServeClient, ServeError

    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.tasks is not None:
        overrides["tasks"] = args.tasks
    if args.policy is not None:
        overrides["policy"] = args.policy
    if args.inject_fault:
        overrides["inject_fault"] = list(args.inject_fault)
    client = ServeClient(args.socket)
    try:
        job = client.submit(
            args.target, priority=args.priority, overrides=overrides
        )
        print(
            f"{job['id']}: {job['state']} "
            f"(target={job['target']}, priority={job['priority']})"
        )
        if args.wait:
            job = client.wait(job["id"], timeout=args.wait_timeout)
            print(_job_line(job))
            if job["state"] != "done":
                return 1
    except ServeError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _job_line(job: dict) -> str:
    line = f"{job['id']}: {job['state']} target={job['target']}"
    result = job.get("result")
    if result:
        line += (
            f" value_total={result['value_total']:.0f}"
            f" makespan={result['makespan']:.3f}s"
            f" tasks={result['tasks']} chunks={result['chunks']}"
        )
    if job.get("error"):
        line += f" error={job['error']}"
    if job.get("error_file"):
        line += f" error_file={job['error_file']}"
    if job.get("resume_dir"):
        line += f" resume_dir={job['resume_dir']}"
    return line


def _cmd_status(args: argparse.Namespace) -> int:
    from .serve.client import ServeClient, ServeError

    client = ServeClient(args.socket)
    try:
        if args.job:
            response = client.status(args.job)
            print(_job_line(response["job"]))
        else:
            response = client.status()
            print(
                f"serve: {response['live_workers']}/"
                f"{response['processors']} workers live, "
                f"{response['running']} running, "
                f"{response['queued']} queued"
                + (" (draining)" if response.get("draining") else "")
            )
            pool = response.get("pool")
            if pool and (
                pool["respawns"]
                or pool["grows"]
                or pool["shrinks"]
                or pool["quarantined"]
            ):
                print(
                    f"pool:  {pool['respawns']} respawned, "
                    f"{pool['grows']} grown, {pool['shrinks']} shrunk, "
                    f"quarantined slots: "
                    f"{pool['quarantined'] or 'none'}"
                )
            for job in response["jobs"]:
                print(_job_line(job))
    except ServeError as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Orchestrating Interactions Among Parallel "
            "Computations' (PLDI 1993)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compile_parser = commands.add_parser(
        "compile", help="compile a MiniF source file"
    )
    compile_parser.add_argument("file")
    compile_parser.add_argument("--no-split", action="store_true")
    compile_parser.add_argument("--no-pipeline", action="store_true")
    compile_parser.add_argument(
        "--emit",
        choices=("report", "delirium", "sections"),
        default="report",
    )
    compile_parser.set_defaults(func=_cmd_compile)

    descriptor_parser = commands.add_parser(
        "descriptors", help="print symbolic data descriptors"
    )
    descriptor_parser.add_argument("file")
    descriptor_parser.set_defaults(func=_cmd_descriptors)

    simulate_parser = commands.add_parser(
        "simulate", help="run an application workload on the simulated machine"
    )
    simulate_parser.add_argument("app")
    simulate_parser.add_argument(
        "--modes",
        nargs="+",
        default=["taper", "split"],
        choices=("static", "taper", "split"),
    )
    simulate_parser.add_argument(
        "--processors", "-p", nargs="+", type=int, default=[512]
    )
    simulate_parser.add_argument("--steps", type=int, default=3)
    simulate_parser.set_defaults(func=_cmd_simulate)

    trace_parser = commands.add_parser(
        "trace",
        help=(
            "trace a MiniF source file or workload on the simulated "
            "machine (Chrome trace JSON + metrics report)"
        ),
    )
    trace_parser.add_argument(
        "target", help="a MiniF source file or a workload name"
    )
    trace_parser.add_argument("--processors", "-p", type=int, default=64)
    trace_parser.add_argument(
        "--mode",
        default="split",
        choices=("static", "taper", "split"),
        help="execution mode for workload targets",
    )
    trace_parser.add_argument(
        "--steps", type=int, default=2, help="time steps for workload targets"
    )
    trace_parser.add_argument(
        "--tasks",
        type=int,
        default=256,
        help="tasks per parallel op for source-file targets",
    )
    trace_parser.add_argument(
        "--seed", type=int, default=0, help="synthetic-cost RNG seed"
    )
    trace_parser.add_argument(
        "--out", default="trace.json", help="Chrome trace output path"
    )
    trace_parser.add_argument(
        "--metrics", default="metrics.json", help="metrics report output path"
    )
    trace_parser.add_argument(
        "--timeline",
        action="store_true",
        help="print an ASCII per-processor timeline",
    )
    trace_parser.add_argument("--timeline-width", type=int, default=72)
    trace_parser.set_defaults(func=_cmd_trace)

    run_parser = commands.add_parser(
        "run",
        help=(
            "execute a source file or workload on a backend "
            "(sim = simulator, mp = real multiprocessing workers, "
            "dist = remote `repro hostagent` fleets via --hosts)"
        ),
    )
    run_parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help=(
            "a MiniF source file, a real-kernel workload "
            "(fig1, reduction, psirrfan), an application workload, or a "
            "streaming source (the built-in `stream`, or a JSON-lines "
            "file with --stream) "
            "(optional with --resume: the checkpointed target is reused)"
        ),
    )
    run_parser.add_argument(
        "--backend", choices=("sim", "mp", "dist"), default="sim"
    )
    run_parser.add_argument(
        "--procs", "-p", type=int, default=4,
        help=(
            "processors (sim) / worker processes (mp); ignored by dist, "
            "whose width is the union of what the host agents expose"
        ),
    )
    run_parser.add_argument(
        "--hosts",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help=(
            "dist backend: comma-separated `repro hostagent` addresses; "
            "the run executes on the union of their workers"
        ),
    )
    run_parser.add_argument(
        "--policy",
        default="taper",
        choices=("taper", "taper-nocost", "self", "gss", "factoring", "static"),
        help="chunk self-scheduling policy",
    )
    run_parser.add_argument(
        "--cost-source",
        default="measured",
        choices=("measured", "declared"),
        help=(
            "TAPER cost feedback: measured task durations (mp default) or "
            "the declared per-task estimates (deterministic chunk sizes)"
        ),
    )
    run_parser.add_argument(
        "--mode",
        default=None,
        choices=("static", "taper", "split"),
        help="execution mode for application-workload targets",
    )
    run_parser.add_argument(
        "--steps", type=int, default=None,
        help="time steps for application-workload targets",
    )
    run_parser.add_argument(
        "--tasks", type=int, default=None,
        help="tasks per parallel op for source-file targets",
    )
    run_parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="hard wall-clock limit for mp runs (seconds)",
    )
    run_parser.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="KIND[:WORKER[:CHUNK[:ARG]]]",
        help=(
            "inject a deterministic fault into an mp run (repeatable): "
            "kill:1:2 kills worker 1 at its 2nd chunk; raise:*:3:2 makes "
            "kernels raise on global dispatches 3 and 4; delay:0:1:0.25 "
            "holds worker 0's reply 0.25s"
        ),
    )
    run_parser.add_argument(
        "--on-fault",
        choices=("retry", "fail"),
        default="retry",
        help=(
            "worker death / kernel exception policy: recover and continue "
            "degraded (retry) or raise immediately (fail)"
        ),
    )
    run_parser.add_argument(
        "--max-retries", type=int, default=2,
        help="per-task retry budget before quarantine",
    )
    run_parser.add_argument(
        "--heartbeat", type=float, default=0.2,
        help="seconds between coordinator liveness sweeps",
    )
    run_parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help=(
            "journal every completed chunk to DIR (mp backend): a killed "
            "run restarts from where it stopped via --resume DIR"
        ),
    )
    run_parser.add_argument(
        "--checkpoint-interval", type=int, default=1, metavar="N",
        help="completed chunks between journal fsyncs (default 1)",
    )
    run_parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help=(
            "replay the chunk journal in DIR, skip completed chunks, and "
            "run only the remainder (TARGET defaults to the one recorded "
            "at checkpoint time)"
        ),
    )
    run_parser.add_argument(
        "--speculate", type=float, default=None, metavar="FACTOR",
        help=(
            "duplicate a straggling chunk onto an idle worker when its "
            "elapsed time exceeds FACTOR x the Kruskal-Weiss tail "
            "estimate; first result wins (try 2.0)"
        ),
    )
    run_parser.add_argument(
        "--data-plane",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help=(
            "payload movement for mp runs: auto places large "
            "numpy-compatible payloads in shared memory (zero-copy "
            "worker views, in-place results), shm forces it for every "
            "eligible op, pickle disables it (queue/args serialization)"
        ),
    )
    run_parser.add_argument(
        "--batching",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "batched chunk execution for kernels declaring a batch_fn: "
            "auto batches chunks large enough to amortize the view "
            "plumbing, on batches every chunk, off forces per-task "
            "dispatch (retries are always per-task)"
        ),
    )
    run_parser.add_argument(
        "--stream",
        action="store_true",
        help=(
            "treat TARGET as a streaming source (mp backend): the "
            "built-in synthetic paged source (`stream`, implied) or a "
            "JSON-lines records file read page by page instead of "
            "compiled as MiniF; see README 'Streaming ingestion'"
        ),
    )
    run_parser.add_argument(
        "--stream-records", type=int, default=None, metavar="N",
        help="synthetic stream length in records (default 200000)",
    )
    run_parser.add_argument(
        "--records-per-task", type=int, default=None, metavar="N",
        help="records packed into one stream task (default 200)",
    )
    run_parser.add_argument(
        "--page-records", type=int, default=None, metavar="N",
        help="records per admitted page of the synthetic stream "
        "(default 20000)",
    )
    run_parser.add_argument(
        "--page-tasks", type=int, default=None, metavar="N",
        help="tasks per page for JSON-lines stream targets (default 256)",
    )
    run_parser.add_argument(
        "--window", type=int, default=4, metavar="PAGES",
        help=(
            "bounded in-flight window: unsettled pages a stream may "
            "hold admitted at once (default 4)"
        ),
    )
    run_parser.add_argument(
        "--high-watermark", type=int, default=None, metavar="TASKS",
        help=(
            "pause stream admission once this many admitted tasks wait "
            "unfinished (default: adaptive, 8x the mean page)"
        ),
    )
    run_parser.add_argument(
        "--low-watermark", type=int, default=None, metavar="TASKS",
        help=(
            "resume stream admission once waiting tasks drain below "
            "this (default: half the high watermark)"
        ),
    )
    run_parser.add_argument(
        "--wall-clock-limit", type=float, default=None, metavar="SECONDS",
        help=(
            "stop gracefully after SECONDS: drain in-flight chunks, "
            "checkpoint, and exit 75 with a partial result (vs --timeout, "
            "which raises)"
        ),
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--trace-out", default=None, help="Chrome trace output path"
    )
    run_parser.add_argument(
        "--metrics-out", default=None, help="metrics JSON output path"
    )
    run_parser.set_defaults(func=_cmd_run)

    hostagent_parser = commands.add_parser(
        "hostagent",
        help=(
            "expose this host's workers to a remote `run --backend "
            "dist` coordinator over TCP"
        ),
    )
    hostagent_parser.add_argument(
        "--workers", "-w", type=int, default=4,
        help="local worker processes this agent exposes",
    )
    hostagent_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port to listen on (default: an ephemeral port, "
        "printed on the ready line)",
    )
    hostagent_parser.add_argument(
        "--bind", default="127.0.0.1",
        help="interface to bind (default loopback; 0.0.0.0 for LAN)",
    )
    hostagent_parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for the workers",
    )
    hostagent_parser.add_argument(
        "--shm-cache-bytes", type=int, default=None, metavar="BYTES",
        help=(
            "byte budget of the agent's shared-memory payload segment "
            "cache (LRU-evicted; default 256 MiB, 0 = unbounded)"
        ),
    )
    hostagent_parser.set_defaults(func=_cmd_hostagent)

    serve_parser = commands.add_parser(
        "serve",
        help=(
            "run the resident job daemon: a warm mp worker pool on a "
            "Unix socket with Eq. 1 cross-job worker rationing"
        ),
    )
    serve_parser.add_argument(
        "--state-dir",
        default=".repro-serve",
        help=(
            "daemon state directory: per-job checkpoint journals, the "
            "default socket, and the shutdown dump (jobs.json, "
            "events.jsonl)"
        ),
    )
    serve_parser.add_argument(
        "--socket",
        default=None,
        help="Unix socket path (default: STATE_DIR/serve.sock)",
    )
    serve_parser.add_argument(
        "--procs", "-p", type=int, default=4,
        help="resident worker processes (shared by all jobs)",
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=8,
        help="admission control: queued jobs beyond this are rejected",
    )
    serve_parser.add_argument(
        "--max-running", type=int, default=4,
        help="concurrent job sessions sharing the pool",
    )
    serve_parser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for the pool",
    )
    serve_parser.add_argument(
        "--min-workers", type=int, default=None, metavar="N",
        help=(
            "idle-shrink floor: the pool never shrinks below N live "
            "workers (default: --procs, i.e. no shrink below base width)"
        ),
    )
    serve_parser.add_argument(
        "--max-workers", type=int, default=None, metavar="N",
        help=(
            "elastic ceiling: grow up to N workers when the load is "
            "compute-bound (default: --procs, i.e. no growth)"
        ),
    )
    serve_parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "cooperatively stop a worker idle this long, down to "
            "--min-workers (default: never shrink)"
        ),
    )
    serve_parser.add_argument(
        "--max-respawns", type=int, default=3, metavar="N",
        help=(
            "crash-loop breaker: quarantine a pool slot that dies more "
            "than N times within the rolling respawn window"
        ),
    )
    serve_parser.add_argument(
        "--respawn-backoff", type=float, default=0.1, metavar="SECONDS",
        help=(
            "base delay before respawning a dead worker (doubles per "
            "death in the rolling window)"
        ),
    )
    serve_parser.add_argument(
        "--shm-cache-bytes", type=int, default=None, metavar="BYTES",
        help=(
            "byte budget of the pool's shared-memory payload segment "
            "cache (LRU-evicted; default 256 MiB, 0 = unbounded)"
        ),
    )
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = commands.add_parser(
        "submit", help="submit a job to a running serve daemon"
    )
    submit_parser.add_argument(
        "target",
        help=(
            "a real-kernel workload (fig1, reduction, psirrfan) or a "
            "MiniF source file"
        ),
    )
    submit_parser.add_argument(
        "--socket",
        default=_default_socket(".repro-serve"),
        help="daemon socket path",
    )
    submit_parser.add_argument(
        "--priority", type=int, default=0,
        help="higher runs first (FIFO within a priority band)",
    )
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its result",
    )
    submit_parser.add_argument(
        "--wait-timeout", type=float, default=300.0,
        help="seconds --wait is willing to block",
    )
    submit_parser.add_argument("--seed", type=int, default=None)
    submit_parser.add_argument(
        "--tasks", type=int, default=None,
        help="tasks per parallel op for source-file targets",
    )
    submit_parser.add_argument(
        "--policy",
        choices=("taper", "taper-nocost", "self", "gss", "factoring",
                 "static"),
        default=None,
        help="chunk self-scheduling policy for this job",
    )
    submit_parser.add_argument(
        "--inject-fault",
        action="append",
        default=None,
        metavar="KIND[:WORKER[:CHUNK[:ARG]]]",
        help=(
            "inject a deterministic fault into this job (repeatable; "
            "same grammar as `run --inject-fault`): poolkill:*:2:1 "
            "kills one pool worker at global dispatch 2 and the "
            "elastic pool respawns it"
        ),
    )
    submit_parser.set_defaults(func=_cmd_submit)

    status_parser = commands.add_parser(
        "status", help="query a running serve daemon"
    )
    status_parser.add_argument(
        "job", nargs="?", default=None, help="a job id (all jobs if omitted)"
    )
    status_parser.add_argument(
        "--socket",
        default=_default_socket(".repro-serve"),
        help="daemon socket path",
    )
    status_parser.set_defaults(func=_cmd_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
