"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile FILE``      — run the full compiler on a MiniF source file and
  print the transformation report, the Delirium coordination graph, or
  the transformed FORTRAN sections;
* ``descriptors FILE``  — print the symbolic data descriptor of every
  top-level primitive computation;
* ``simulate APP``      — run one of the paper's applications on the
  simulated machine and report speedup/efficiency.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_compile(args: argparse.Namespace) -> int:
    from .compiler import compile_source

    with open(args.file) as handle:
        source = handle.read()
    programs = compile_source(
        source,
        apply_splits=not args.no_split,
        apply_pipelining=not args.no_pipeline,
    )
    for program in programs:
        if args.emit == "report":
            print(program.report())
        elif args.emit == "delirium":
            print(program.delirium_text, end="")
        elif args.emit == "sections":
            for name, text in program.transformed_sections().items():
                print(f"! section {name}")
                print(text)
                print()
    return 0


def _cmd_descriptors(args: argparse.Namespace) -> int:
    from .analysis import analyze_unit
    from .descriptors import DescriptorBuilder
    from .lang import parse, print_stmts
    from .split import SplitContext, decompose

    with open(args.file) as handle:
        source = handle.read()
    for unit in parse(source).units:
        print(f"! unit {unit.name}")
        context = SplitContext(unit)
        for primitive in decompose(unit.body, context):
            first_line = print_stmts(primitive.stmts).splitlines()[0]
            print(f"primitive {primitive.index} ({primitive.kind}): {first_line}")
            for line in str(primitive.descriptor).splitlines():
                print(f"  {line}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .apps import ALL_WORKLOADS

    workload_class = ALL_WORKLOADS.get(args.app)
    if workload_class is None:
        print(
            f"unknown application {args.app!r}; pick from "
            f"{', '.join(sorted(ALL_WORKLOADS))}",
            file=sys.stderr,
        )
        return 2
    header_printed = False
    for mode in args.modes:
        workload = workload_class(steps=args.steps)
        for p in args.processors:
            result = workload.run(p, mode)
            if not header_printed:
                print(f"{'app':>10} {'mode':>8} {'p':>6} {'speedup':>9} {'eff':>6}")
                header_printed = True
            print(
                f"{args.app:>10} {mode:>8} {p:>6} "
                f"{result.speedup:>9.0f} {result.efficiency:>6.2f}"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Orchestrating Interactions Among Parallel "
            "Computations' (PLDI 1993)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compile_parser = commands.add_parser(
        "compile", help="compile a MiniF source file"
    )
    compile_parser.add_argument("file")
    compile_parser.add_argument("--no-split", action="store_true")
    compile_parser.add_argument("--no-pipeline", action="store_true")
    compile_parser.add_argument(
        "--emit",
        choices=("report", "delirium", "sections"),
        default="report",
    )
    compile_parser.set_defaults(func=_cmd_compile)

    descriptor_parser = commands.add_parser(
        "descriptors", help="print symbolic data descriptors"
    )
    descriptor_parser.add_argument("file")
    descriptor_parser.set_defaults(func=_cmd_descriptors)

    simulate_parser = commands.add_parser(
        "simulate", help="run an application workload on the simulated machine"
    )
    simulate_parser.add_argument("app")
    simulate_parser.add_argument(
        "--modes",
        nargs="+",
        default=["taper", "split"],
        choices=("static", "taper", "split"),
    )
    simulate_parser.add_argument(
        "--processors", "-p", nargs="+", type=int, default=[512]
    )
    simulate_parser.add_argument("--steps", type=int, default=3)
    simulate_parser.set_defaults(func=_cmd_simulate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
