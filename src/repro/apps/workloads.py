"""Shared workload machinery for the Section 5 applications.

The paper evaluates on four production codes (Psirrfan x-ray tomography,
the UCLA General Circulation Model, an adaptive vortex method, and the EMU
circuit simulator).  Those codes and their inputs are not available; per
DESIGN.md's substitution rule each application is modelled as a generator
of *phases* — parallel operations with the cost distribution and available
parallelism the paper describes — executed on the simulated machine under
one of three modes:

* ``static``   — block scheduling, phases strictly serialised (the
  baseline curve of Figure 6),
* ``taper``    — adaptive distributed TAPER per phase, phases serialised
  (the "TAPER" curve),
* ``split``    — TAPER plus the split/pipeline structure: independent
  sub-phases run concurrently under the Eq. 1 processor allocator (the
  "TAPER with split" curve).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.events import Tracer
from ..runtime.distributed import run_distributed
from ..runtime.executor import run_concurrent_ops
from ..runtime.machine import MachineConfig
from ..runtime.schedulers import make_policy, run_central
from ..runtime.task import ParallelOp

MODES = ("static", "taper", "split")


# ---------------------------------------------------------------------------
# Cost distributions
# ---------------------------------------------------------------------------


def regular_costs(n: int, cost: float = 10.0) -> List[float]:
    """A perfectly regular operation."""
    return [cost] * n


def lognormal_costs(
    rng: random.Random, n: int, mean: float, cv: float
) -> List[float]:
    """Irregular costs with a given mean and coefficient of variation."""
    if cv <= 0:
        return [mean] * n
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return [rng.lognormvariate(mu, math.sqrt(sigma2)) for _ in range(n)]


def uniform_costs(
    rng: random.Random, n: int, lo: float, hi: float
) -> List[float]:
    """Bounded-variability costs (no unbounded straggler tail)."""
    return [rng.uniform(lo, hi) for _ in range(n)]


def bimodal_costs(
    rng: random.Random,
    n: int,
    cheap: float,
    expensive: float,
    expensive_fraction: float,
) -> List[float]:
    """Two-population costs (e.g. convective vs quiescent grid columns)."""
    return [
        expensive if rng.random() < expensive_fraction else cheap
        for _ in range(n)
    ]


def power_law_costs(
    rng: random.Random,
    n: int,
    scale: float,
    alpha: float = 2.2,
    cap: Optional[float] = None,
) -> List[float]:
    """Heavy-tailed costs (hierarchical N-body interaction lists).

    ``cap`` bounds the tail: adaptive codes split oversized interaction
    lists across tree levels, so no single task grows without limit.
    """
    costs = [scale * rng.paretovariate(alpha) for _ in range(n)]
    if cap is not None:
        costs = [min(c, cap) for c in costs]
    return costs


def active_subset(rng: random.Random, n: int, fraction: float) -> List[int]:
    """A sparse active index set (mask semantics from Figure 1)."""
    return [index for index in range(n) if rng.random() < fraction]


# ---------------------------------------------------------------------------
# Phases and schedules
# ---------------------------------------------------------------------------


@dataclass
class Phase:
    """One parallel operation within a time step, with split structure.

    ``concurrent_group`` — phases sharing a group id within one step may
    execute concurrently in ``split`` mode (the split transformation
    proved them independent).  In ``static``/``taper`` modes group
    structure is ignored and phases serialise in list order.
    """

    op: ParallelOp
    concurrent_group: int = 0


@dataclass
class StepResult:
    makespan: float
    work: float


@dataclass
class AppRunResult:
    """Simulated execution of a whole application run."""

    name: str
    mode: str
    processors: int
    makespan: float
    total_work: float
    steps: int

    @property
    def speedup(self) -> float:
        if self.makespan <= 0:
            return float(self.processors)
        return self.total_work / self.makespan

    @property
    def efficiency(self) -> float:
        if self.processors <= 0:
            return 1.0
        return self.speedup / self.processors


class AppWorkload:
    """Base class: subclasses generate per-step phase lists."""

    name = "app"

    def __init__(self, seed: int = 0, steps: int = 4):
        self.seed = seed
        self.steps = steps

    # Subclasses override.
    def phases_for_step(self, rng: random.Random, step: int, mode: str) -> List[Phase]:
        raise NotImplementedError

    # -- execution -------------------------------------------------------------

    def run(
        self,
        p: int,
        mode: str = "taper",
        config: Optional[MachineConfig] = None,
        tracer: Optional[Tracer] = None,
    ) -> AppRunResult:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; pick from {MODES}")
        config = config or MachineConfig(processors=p)
        rng = random.Random(self.seed)
        makespan = 0.0
        total_work = 0.0
        for step in range(self.steps):
            phases = self.phases_for_step(rng, step, mode)
            step_result = self._run_step(phases, p, mode, config, tracer)
            makespan += step_result.makespan
            total_work += step_result.work
        return AppRunResult(
            name=self.name,
            mode=mode,
            processors=p,
            makespan=makespan,
            total_work=total_work,
            steps=self.steps,
        )

    def _run_step(
        self,
        phases: List[Phase],
        p: int,
        mode: str,
        config: MachineConfig,
        tracer: Optional[Tracer] = None,
    ) -> StepResult:
        # Serialised sub-runs each start their local clock at zero; when
        # tracing, advance the tracer's origin after each one so the
        # combined stream lays them end to end on one timeline.
        work = sum(phase.op.total_work for phase in phases)
        if mode == "static":
            makespan = 0.0
            for phase in phases:
                if not phase.op.size:
                    continue
                span = run_central(
                    phase.op.costs,
                    p,
                    make_policy("static"),
                    config,
                    tracer=tracer,
                    op_label=phase.op.name,
                ).makespan
                makespan += span
                if tracer is not None:
                    tracer.advance(span)
            return StepResult(makespan=makespan, work=work)
        if mode == "taper":
            makespan = 0.0
            for phase in phases:
                if not phase.op.size:
                    continue
                span = run_distributed(
                    phase.op.costs,
                    p,
                    config=config,
                    bytes_per_task=phase.op.bytes_per_task,
                    tracer=tracer,
                    op_label=phase.op.name,
                ).makespan
                makespan += span
                if tracer is not None:
                    tracer.advance(span)
            return StepResult(makespan=makespan, work=work)
        # split mode: group concurrent phases under the Eq. 1 allocator.
        makespan = 0.0
        groups: Dict[int, List[ParallelOp]] = {}
        order: List[int] = []
        for phase in phases:
            if phase.op.size == 0:
                continue
            if phase.concurrent_group not in groups:
                groups[phase.concurrent_group] = []
                order.append(phase.concurrent_group)
            groups[phase.concurrent_group].append(phase.op)
        for group_id in order:
            ops = groups[group_id]
            if len(ops) == 1:
                span = run_distributed(
                    ops[0].costs,
                    p,
                    config=config,
                    bytes_per_task=ops[0].bytes_per_task,
                    tracer=tracer,
                    op_label=ops[0].name,
                ).makespan
            else:
                span = run_concurrent_ops(
                    ops, p, config, allocator="balance", tracer=tracer
                ).makespan
            makespan += span
            if tracer is not None:
                tracer.advance(span)
        return StepResult(makespan=makespan, work=work)

    # -- reporting helpers ----------------------------------------------------------

    def speedup_curve(
        self,
        processor_counts: Sequence[int],
        mode: str,
        config_factory: Optional[Callable[[int], MachineConfig]] = None,
    ) -> List[Tuple[int, float, float]]:
        """[(p, speedup, efficiency)] across processor counts."""
        rows = []
        for p in processor_counts:
            config = config_factory(p) if config_factory else None
            result = self.run(p, mode, config)
            rows.append((p, result.speedup, result.efficiency))
        return rows
