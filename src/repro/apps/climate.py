"""The UCLA General Circulation Model workload (Section 5).

The paper: "using just the TAPER algorithm with cost functions, we could
run the UCLA climate model on 512 processors of an Ncube-2 multiprocessor
at 87% efficiency ...  When we modified the climate model using split
wherever applicable, we were able to run the same input data set (about
3200 latitude-longitude grid cells) at 83% efficiency on 1024 processors.
Hence the total speedup increased from 445 to 850.  Without this
modification, the climate model's speedup on 1024 processors is only 581
(57% efficiency) because of the irregular task execution times found in
the cloud physics section of the code."

Model: per time step, three column sweeps over ~3200 grid cells —

* **dynamics** — regular advection/pressure work per column,
* **cloud physics** — irregular: convectively active columns cost an
  order of magnitude more than quiescent ones,
* **radiation** — regular, cheaper.

Split exposes: cloud physics and radiation are independent (they update
disjoint fields), and the next step's dynamics can overlap the current
step's irregular tail (pipelining) — so in ``split`` mode the irregular
cloud-physics columns are smoothed by regular work, exactly the mechanism
Section 1 describes.
"""

from __future__ import annotations

import random
from typing import List

from ..runtime import ParallelOp
from .workloads import AppWorkload, Phase, bimodal_costs, regular_costs


class ClimateWorkload(AppWorkload):
    """UCLA-GCM-like workload: ~3200 grid cells, irregular cloud physics."""

    name = "climate"

    def __init__(
        self,
        cells: int = 3200,
        dynamics_cost: float = 20.0,
        radiation_cost: float = 8.0,
        quiescent_cost: float = 6.0,
        convective_cost: float = 120.0,
        convective_fraction: float = 0.09,
        seed: int = 7,
        steps: int = 4,
    ):
        super().__init__(seed=seed, steps=steps)
        self.cells = cells
        self.dynamics_cost = dynamics_cost
        self.radiation_cost = radiation_cost
        self.quiescent_cost = quiescent_cost
        self.convective_cost = convective_cost
        self.convective_fraction = convective_fraction

    def phases_for_step(
        self, rng: random.Random, step: int, mode: str
    ) -> List[Phase]:
        dynamics = ParallelOp(
            name=f"dyn{step}",
            costs=regular_costs(self.cells, self.dynamics_cost),
            bytes_per_task=8.0 * 40,
        )
        cloud = ParallelOp(
            name=f"cloud{step}",
            costs=bimodal_costs(
                rng,
                self.cells,
                self.quiescent_cost,
                self.convective_cost,
                self.convective_fraction,
            ),
            bytes_per_task=8.0 * 24,
        )
        radiation = ParallelOp(
            name=f"rad{step}",
            costs=regular_costs(self.cells, self.radiation_cost),
            bytes_per_task=8.0 * 16,
        )
        if mode != "split":
            return [Phase(dynamics, 0), Phase(cloud, 1), Phase(radiation, 2)]
        # Split mode: cloud physics and radiation (independent field
        # updates, proven by split) share a group, and the *next* step's
        # dynamics — whose split-independent portion does not need this
        # step's cloud output — joins it, pipelining the regular sweep
        # against the irregular tail.
        phases = [Phase(dynamics, 0)] if step == 0 else []
        group = [Phase(cloud, 1), Phase(radiation, 1)]
        if step + 1 < self.steps:
            next_dynamics = ParallelOp(
                name=f"dyn{step + 1}",
                costs=regular_costs(self.cells, self.dynamics_cost),
                bytes_per_task=8.0 * 40,
            )
            group.append(Phase(next_dynamics, 1))
        return phases + group
