"""Streaming workload builders for the mp backend's ingestion path.

Two paged sources, each wrapped as a :class:`repro.runtime.task.StreamOp`
whose pages the mp backend admits under the bounded in-flight window
(``RunConfig.stream_window`` + high/low-watermark backpressure, see
``docs/ARCHITECTURE.md``):

* :func:`stream_ops` — the **synthetic** source: ``records`` float
  records ``value(i) = float(i % 977)``, packed ``records_per_task`` per
  task and ``page_records`` per page.  Fully deterministic with a
  closed-form total (:func:`synthetic_total`), so an interrupted-and-
  resumed run can be checked for *exact* equality against an
  uninterrupted one;
* :func:`stream_json_ops` — the **paged-JSON-records** source: a
  JSON-lines file (one record per line, each a JSON array of numbers or
  an object with a ``"values"`` array), read incrementally and paged
  ``page_tasks`` tasks at a time.  The file is never materialised in
  memory — only the pages inside the in-flight window are.

Both use :data:`STREAM_SUM`: sum one payload row, returning an integral
float so value totals are exact under any summation order (the same
convention as :mod:`repro.apps.kernels`).  Pages carry declared per-task
costs derived from the kernel's ``cost_fn``, so ``cost_source="declared"``
runs work unchanged.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, List, Optional

from ..runtime.kernel import Kernel
from ..runtime.task import StreamOp, StreamPage

try:  # numpy is optional: the synthetic source falls back to lists
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less hosts
    _np = None

#: Record-value modulus: ``value(i) = float(i % SYNTH_MOD)``.  Prime and
#: small enough that float64 sums of billions of records stay exact.
SYNTH_MOD = 977

#: Defaults for the synthetic stream (the ``"stream"`` run target).
DEFAULT_RECORDS = 200_000
DEFAULT_RECORDS_PER_TASK = 200
DEFAULT_PAGE_RECORDS = 20_000
#: Default tasks per page for the JSON-lines source.
DEFAULT_PAGE_TASKS = 256


def stream_sum_kernel(payload) -> float:
    """Sum one payload row (list or 1-D array of integral floats)."""
    if _np is None or not hasattr(payload, "sum"):
        return float(sum(payload))
    return float(_np.asarray(payload).sum())


def stream_row_cost(payload) -> float:
    """Declared cost of one row: proportional to its record count."""
    return len(payload) / 50.0


#: The streaming kernel declaration.  No ``batch_fn``: stream chunks are
#: dispatched per-task by design (pages, not chunks, are the batch unit).
STREAM_SUM = Kernel(fn=stream_sum_kernel, cost_fn=stream_row_cost)


def synthetic_record(index: int) -> float:
    """The value of global record ``index``."""
    return float(index % SYNTH_MOD)


def synthetic_total(records: int) -> float:
    """Closed-form sum of the first ``records`` synthetic record values.

    The ground truth an interrupted-and-resumed streaming run is checked
    against: ``sum(float(i % 977) for i in range(records))`` without
    iterating.
    """
    full_cycles, rem = divmod(records, SYNTH_MOD)
    cycle_sum = SYNTH_MOD * (SYNTH_MOD - 1) // 2
    return float(full_cycles * cycle_sum + rem * (rem - 1) // 2)


def synthetic_pages(
    records: int,
    records_per_task: int = DEFAULT_RECORDS_PER_TASK,
    page_records: int = DEFAULT_PAGE_RECORDS,
) -> Iterator[StreamPage]:
    """Yield the synthetic stream as :class:`StreamPage` batches.

    Pages are numpy float64 rows when numpy is available and the page
    divides evenly into ``records_per_task`` rows (shm-eligible); ragged
    tails and numpy-less hosts fall back to lists (pickle plane).
    """
    produced = 0
    while produced < records:
        count = min(page_records, records - produced)
        stop = produced + count
        if _np is not None and count % records_per_task == 0:
            flat = (
                _np.arange(produced, stop, dtype=_np.int64) % SYNTH_MOD
            ).astype(_np.float64)
            payloads: List[Any] = list(flat.reshape(-1, records_per_task))
        else:
            payloads = [
                [
                    synthetic_record(index)
                    for index in range(start, min(start + records_per_task, stop))
                ]
                for start in range(produced, stop, records_per_task)
            ]
        yield StreamPage(
            payloads=payloads,
            costs=[stream_row_cost(row) for row in payloads],
        )
        produced = stop


def stream_ops(
    records: int = DEFAULT_RECORDS,
    records_per_task: int = DEFAULT_RECORDS_PER_TASK,
    page_records: int = DEFAULT_PAGE_RECORDS,
    seed: int = 0,
    sink=None,
) -> List[StreamOp]:
    """The synthetic streaming workload: one :class:`StreamOp`.

    ``seed`` is accepted for builder-signature uniformity; the source is
    deterministic regardless, which is what makes checkpoint resume
    reconstruct the identical stream.
    """
    if records < 0:
        raise ValueError(f"records must be >= 0, got {records}")
    if records_per_task <= 0 or page_records <= 0:
        raise ValueError(
            "records_per_task and page_records must be positive "
            f"(got {records_per_task}, {page_records})"
        )

    def source() -> Iterator[StreamPage]:
        return synthetic_pages(records, records_per_task, page_records)

    return [
        StreamOp(
            name="stream",
            kernel=STREAM_SUM,
            source=source,
            sink=sink,
            bytes_per_task=8.0 * records_per_task,
        )
    ]


def _record_values(record: Any, path: str, line_number: int) -> List[float]:
    """One JSON-lines record to a payload row, or a clear ValueError."""
    if isinstance(record, dict):
        record = record.get("values")
    if not isinstance(record, list) or not record:
        raise ValueError(
            f"{path}:{line_number}: expected a non-empty JSON array of "
            "numbers (or an object with a 'values' array)"
        )
    return [float(value) for value in record]


def json_record_pages(
    path: str, page_tasks: int = DEFAULT_PAGE_TASKS
) -> Iterator[StreamPage]:
    """Read a JSON-lines file incrementally as stream pages.

    One record (line) becomes one task; every ``page_tasks`` records
    become one page.  Blank lines are skipped; a malformed line raises
    with its line number.
    """
    with open(path) as handle:
        payloads: List[Any] = []
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from None
            payloads.append(_record_values(record, path, line_number))
            if len(payloads) >= page_tasks:
                yield StreamPage(
                    payloads=payloads,
                    costs=[stream_row_cost(row) for row in payloads],
                )
                payloads = []
        if payloads:
            yield StreamPage(
                payloads=payloads,
                costs=[stream_row_cost(row) for row in payloads],
            )


def stream_json_ops(
    path: str,
    page_tasks: int = DEFAULT_PAGE_TASKS,
    sink=None,
) -> List[StreamOp]:
    """The paged-JSON-records streaming workload: one :class:`StreamOp`
    over a JSON-lines file (see :func:`json_record_pages`)."""
    if page_tasks <= 0:
        raise ValueError(f"page_tasks must be positive, got {page_tasks}")

    def source() -> Iterator[StreamPage]:
        return json_record_pages(path, page_tasks)

    return [
        StreamOp(
            name=os.path.basename(path),
            kernel=STREAM_SUM,
            source=source,
            sink=sink,
        )
    ]


def write_json_records(
    path: str, records: int, records_per_task: int = DEFAULT_RECORDS_PER_TASK
) -> float:
    """Write the synthetic stream as a JSON-lines file; returns the
    expected value total (test/demo helper for :func:`stream_json_ops`)."""
    with open(path, "w") as handle:
        for start in range(0, records, records_per_task):
            row = [
                synthetic_record(index)
                for index in range(start, min(start + records_per_task, records))
            ]
            handle.write(json.dumps(row))
            handle.write("\n")
    return synthetic_total(records)


#: Streaming workloads runnable by name on the mp backend
#: (``python -m repro run stream --backend mp``).
STREAM_WORKLOADS = {
    "stream": stream_ops,
}


def resolve_stream_ops(
    target: str,
    overrides: Optional[dict] = None,
    seed: int = 0,
    sink=None,
) -> List[StreamOp]:
    """Resolve a string run target to streaming operations.

    Named workloads (:data:`STREAM_WORKLOADS`) take the synthetic knobs
    (``stream_records``, ``records_per_task``, ``page_records``); an
    existing file path is read as JSON-lines records (``page_tasks``).
    """
    overrides = dict(overrides or {})
    if target in STREAM_WORKLOADS:
        return STREAM_WORKLOADS[target](
            records=overrides.get("stream_records", DEFAULT_RECORDS),
            records_per_task=overrides.get(
                "records_per_task", DEFAULT_RECORDS_PER_TASK
            ),
            page_records=overrides.get("page_records", DEFAULT_PAGE_RECORDS),
            seed=seed,
            sink=sink,
        )
    if os.path.exists(target):
        return stream_json_ops(
            target,
            page_tasks=overrides.get("page_tasks", DEFAULT_PAGE_TASKS),
            sink=sink,
        )
    raise ValueError(
        f"unknown stream target {target!r}: not a streaming workload "
        f"({', '.join(sorted(STREAM_WORKLOADS))}) or a JSON-lines file"
    )
