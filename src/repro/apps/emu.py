"""The EMU circuit simulator workload (Section 5).

EMU [Ackland, Lucco, London & DeBenedictis] is an event-driven parallel
circuit simulator.  Per simulated timestep only the *active* devices (those
whose inputs changed) are re-evaluated — a sparse, time-varying active set
with bimodal evaluation costs (simple gates vs analogue blocks) — followed
by a regular node-voltage update pass.

Split exposes that the update of circuit nodes untouched by the active
devices is independent of device evaluation (the Figure 2 pattern), so in
``split`` mode the regular update runs beside the irregular evaluation.
"""

from __future__ import annotations

import math
import random
from typing import List

from ..runtime import ParallelOp
from .workloads import (
    AppWorkload,
    Phase,
    active_subset,
    bimodal_costs,
    regular_costs,
)


class EmuWorkload(AppWorkload):
    """Event-driven circuit simulation: sparse, bimodal device activity."""

    name = "emu"

    def __init__(
        self,
        devices: int = 8192,
        base_activity: float = 0.25,
        activity_swing: float = 0.15,
        gate_cost: float = 8.0,
        analog_cost: float = 60.0,
        analog_fraction: float = 0.10,
        update_cost: float = 5.0,
        seed: int = 23,
        steps: int = 4,
    ):
        super().__init__(seed=seed, steps=steps)
        self.devices = devices
        self.base_activity = base_activity
        self.activity_swing = activity_swing
        self.gate_cost = gate_cost
        self.analog_cost = analog_cost
        self.analog_fraction = analog_fraction
        self.update_cost = update_cost

    def phases_for_step(
        self, rng: random.Random, step: int, mode: str
    ) -> List[Phase]:
        # Activity oscillates across timesteps (clock phases).
        activity = self.base_activity + self.activity_swing * math.sin(
            step * math.pi / 2.0
        )
        active = active_subset(rng, self.devices, max(activity, 0.02))
        evaluate = ParallelOp(
            name=f"eval{step}",
            costs=bimodal_costs(
                rng,
                len(active),
                self.gate_cost,
                self.analog_cost,
                self.analog_fraction,
            ),
            bytes_per_task=8.0 * 12,
        )
        touched = len(active)
        untouched = self.devices - touched
        update_independent = ParallelOp(
            name=f"updI{step}",
            costs=regular_costs(untouched, self.update_cost),
            bytes_per_task=8.0 * 4,
        )
        update_dependent = ParallelOp(
            name=f"updD{step}",
            costs=regular_costs(touched, self.update_cost),
            bytes_per_task=8.0 * 4,
        )
        if mode != "split":
            update_whole = ParallelOp(
                name=f"upd{step}",
                costs=regular_costs(self.devices, self.update_cost),
                bytes_per_task=8.0 * 4,
            )
            return [Phase(evaluate, 0), Phase(update_whole, 1)]
        return [
            Phase(evaluate, 0),
            Phase(update_independent, 0),
            Phase(update_dependent, 1),
        ]
