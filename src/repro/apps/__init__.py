"""Synthetic versions of the paper's Section 5 applications.

Each workload generates parallel operations with the structure and
irregularity the paper describes, and runs them on the simulated machine
in ``static`` / ``taper`` / ``split`` modes (see DESIGN.md substitution
table).
"""

from .climate import ClimateWorkload
from .emu import EmuWorkload
from .psirrfan import PsirrfanWorkload
from .streams import (
    STREAM_WORKLOADS,
    stream_json_ops,
    stream_ops,
    synthetic_total,
    write_json_records,
)
from .vortex import VortexWorkload
from .workloads import (
    AppRunResult,
    AppWorkload,
    MODES,
    Phase,
    active_subset,
    bimodal_costs,
    lognormal_costs,
    power_law_costs,
    regular_costs,
    uniform_costs,
)

ALL_WORKLOADS = {
    "psirrfan": PsirrfanWorkload,
    "climate": ClimateWorkload,
    "vortex": VortexWorkload,
    "emu": EmuWorkload,
}

__all__ = [
    "PsirrfanWorkload",
    "ClimateWorkload",
    "VortexWorkload",
    "EmuWorkload",
    "AppWorkload",
    "AppRunResult",
    "Phase",
    "MODES",
    "ALL_WORKLOADS",
    "STREAM_WORKLOADS",
    "stream_ops",
    "stream_json_ops",
    "synthetic_total",
    "write_json_records",
    "regular_costs",
    "uniform_costs",
    "lognormal_costs",
    "bimodal_costs",
    "power_law_costs",
    "active_subset",
]
