"""Psirrfan: the x-ray tomography workload (Section 5, Figure 6).

The paper's Psirrfan reconstructs an image from x-ray projections.  Its
structure is the paper's running example (Figure 1): per sweep, an
irregular masked column update ``A`` (only the columns selected by the
mask are reconstructed, at highly variable cost) followed by a regular
post-processing pass ``B`` over the whole image.

Split exposes (Section 2's three sources, as measured in Figure 6):

1. ``B_I`` — post-processing of columns untouched by ``A`` runs
   concurrently with ``A``;
2. pipelining across sweeps — sweep k's dependent tail overlaps sweep
   k+1's independent head;
3. the dependent remainder ``B_D`` follows.

With ``taper`` alone the sweep serialises A then B; with ``static`` each
phase is block-scheduled.  "Same input size" across all processor counts,
as in Figure 6 (200-1200 processors, one fixed image).
"""

from __future__ import annotations

import random
from typing import List

from ..runtime import ParallelOp
from .workloads import (
    AppWorkload,
    Phase,
    active_subset,
    regular_costs,
    uniform_costs,
)


class PsirrfanWorkload(AppWorkload):
    """The tomography reconstruction workload.

    Parameters mirror the paper's scale: thousands of image columns, an
    active mask selecting roughly a third of them per sweep, and
    reconstruction costs an order of magnitude above post-processing.
    """

    name = "psirrfan"

    def __init__(
        self,
        columns: int = 2048,
        active_fraction: float = 0.30,
        reconstruct_lo: float = 15.0,
        reconstruct_hi: float = 45.0,
        post_cost: float = 6.0,
        post_tiles_per_column: int = 2,
        seed: int = 42,
        steps: int = 4,
    ):
        super().__init__(seed=seed, steps=steps)
        self.columns = columns
        self.active_fraction = active_fraction
        self.reconstruct_lo = reconstruct_lo
        self.reconstruct_hi = reconstruct_hi
        self.post_cost = post_cost
        #: The post-processing pass decomposes each column into tiles —
        #: finer grain than reconstruction, as in the real code.
        self.post_tiles_per_column = post_tiles_per_column
        #: Deferred dependent tail for cross-sweep pipelining (split mode).
        self._deferred: List[ParallelOp] = []

    def phases_for_step(
        self, rng: random.Random, step: int, mode: str
    ) -> List[Phase]:
        active = active_subset(rng, self.columns, self.active_fraction)
        a_op = ParallelOp(
            name=f"A{step}",
            costs=uniform_costs(
                rng, len(active), self.reconstruct_lo, self.reconstruct_hi
            ),
            bytes_per_task=8.0 * 64,
        )
        tiles = self.post_tiles_per_column
        inactive_count = self.columns - len(active)
        b_independent = ParallelOp(
            name=f"BI{step}",
            costs=regular_costs(inactive_count * tiles, self.post_cost),
            bytes_per_task=8.0 * 32,
        )
        b_dependent = ParallelOp(
            name=f"BD{step}",
            costs=regular_costs(len(active) * tiles, self.post_cost),
            bytes_per_task=8.0 * 32,
        )
        if mode != "split":
            # Unsplit: B is one regular pass over every column, after A.
            b_whole = ParallelOp(
                name=f"B{step}",
                costs=regular_costs(self.columns * tiles, self.post_cost),
                bytes_per_task=8.0 * 32,
            )
            return [Phase(a_op, 0), Phase(b_whole, 1)]
        # Split mode: A runs beside B_I — and beside the previous sweep's
        # deferred dependent tail (the pipelining opportunity).  Legality
        # follows from the dataflow model: BD_{k-1} and A_k both consume
        # the *previous* version of q (arrays are single-assignment values
        # in Delirium), so no anti-dependence orders them.
        phases = [Phase(a_op, 0), Phase(b_independent, 0)]
        for deferred in self._deferred:
            phases.append(Phase(deferred, 0))
        self._deferred = [b_dependent]
        if step == self.steps - 1:
            # Last sweep: nothing left to overlap the tail with.
            phases.append(Phase(b_dependent, 1))
            self._deferred = []
        return phases
