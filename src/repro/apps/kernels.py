"""Real, executable kernels for the multiprocessing backend.

The simulator abstracts a task to a cost; the mp backend needs the task
itself.  This module provides deterministic, pure-Python kernels with the
*shape* of the paper's computations — Figure 1's masked column
reconstruction and post-processing pass, a parallel reduction, and the
Psirrfan tomography sweep — as module-level callables (picklable under
every ``multiprocessing`` start method) plus builders that attach
declared per-task cost estimates so the same operation runs on either
backend.

Every kernel returns an *integral* float, so value totals are exact
under any summation order: a sim run and an mp run of the same workload
report identical task and value totals, which the equivalence suite (and
the ``python -m repro run`` acceptance check) relies on.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..runtime.task import RealOp

try:  # numpy is optional: array workloads are gated on it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less hosts
    _np = None

#: Inner-loop elements per declared work unit: chosen so a "10 unit"
#: task is a few hundred microseconds of real compute — large enough to
#: dwarf dispatch overhead, small enough for quick smoke runs.
ELEMENTS_PER_UNIT = 50


def units_of(elements: int) -> float:
    """Declared cost (work units) of a kernel with ``elements`` inner steps."""
    return elements / ELEMENTS_PER_UNIT


# ---------------------------------------------------------------------------
# Kernels (module-level, deterministic, integral-valued)
# ---------------------------------------------------------------------------


def column_sum_kernel(payload: Tuple[int, int]) -> float:
    """Figure 1's reconstruction: ``result(i) = sum_k q(k, i)``.

    ``payload = (col, elements)``; the synthetic matrix entry
    ``q(k, col)`` is the deterministic integer ``(k * 31 + col * 7) % 97``.
    """
    col, elements = payload
    acc = 0
    base = col * 7
    for k in range(elements):
        acc += (k * 31 + base) % 97
    return float(acc % 1_000_003)


def post_process_kernel(payload: Tuple[int, int]) -> float:
    """Figure 1's regular pass: ``output(j, i) = f(q(j, i))``.

    ``payload = (i, elements)``; ``f`` is a cheap integer polynomial.
    """
    i, elements = payload
    acc = 0
    base = i * 13
    for j in range(elements):
        q = (j * 17 + base) % 89
        acc += (q * q + 3 * q + 7) % 101
    return float(acc % 1_000_003)


def range_sum_kernel(payload: Tuple[int, int]) -> float:
    """One reduction leaf: sum a strided slice of the virtual input."""
    start, length = payload
    acc = 0
    for index in range(start, start + length):
        acc += (index * index + 1) % 9973
    return float(acc % 10_000_019)


def array_sum_kernel(payload) -> float:
    """Sum one payload row (a 1-D float64 array of small integers).

    The payload-heavy kernel: per-task compute is one vectorized pass
    over the row, so run time is dominated by how the rows *got to* the
    worker — exactly what the data-plane benchmark measures.  Rows hold
    integral values, so the sum is exact and backend-independent.
    """
    if _np is None:  # pragma: no cover - numpy-less hosts skip this workload
        return float(sum(payload))
    return float(_np.asarray(payload).sum())


def psirrfan_reconstruct_kernel(payload: Tuple[int, int]) -> float:
    """One active tomography column: back-project ``elements`` rays."""
    col, elements = payload
    acc = 0
    angle = col * 29
    for ray in range(elements):
        # Integer stand-in for the projection geometry.
        acc += ((ray * angle + ray * ray) % 193) + 1
    return float(acc % 1_000_033)


# ---------------------------------------------------------------------------
# Workload builders (RealOps with declared costs)
# ---------------------------------------------------------------------------


def fig1_ops(
    columns: int = 96,
    elements: int = 600,
    active_fraction: float = 0.5,
    seed: int = 0,
) -> List[RealOp]:
    """Figure 1 as two real operations: the irregular masked column loop
    ``A`` beside the regular post-processing pass ``B`` (split's ``B_I``
    portion is what makes them concurrent; here the whole of ``B`` is
    independent for simplicity of the standalone workload)."""
    rng = random.Random(seed)
    active = [c for c in range(columns) if rng.random() < active_fraction]
    # Irregular: each active column reconstructs 1x-3x the base elements.
    a_payloads = [
        (col, elements * rng.randrange(1, 4)) for col in active
    ]
    b_payloads = [(i, elements) for i in range(columns)]
    return [
        RealOp(
            name="A",
            kernel=column_sum_kernel,
            payloads=a_payloads,
            bytes_per_task=8.0 * 64,
            costs=[units_of(p[1]) for p in a_payloads],
        ),
        RealOp(
            name="B",
            kernel=post_process_kernel,
            payloads=b_payloads,
            bytes_per_task=8.0 * 32,
            costs=[units_of(p[1]) for p in b_payloads],
        ),
    ]


def reduction_ops(
    leaves: int = 256, length: int = 700, seed: int = 0
) -> List[RealOp]:
    """A flat data-parallel reduction: one regular operation whose tasks
    sum disjoint slices (Figure 4's reduction pattern)."""
    payloads = [(leaf * length, length) for leaf in range(leaves)]
    return [
        RealOp(
            name="reduce",
            kernel=range_sum_kernel,
            payloads=payloads,
            bytes_per_task=8.0 * 16,
            costs=[units_of(length)] * leaves,
        )
    ]


def psirrfan_ops(
    columns: int = 128,
    elements: int = 500,
    active_fraction: float = 0.35,
    post_elements: int = 180,
    seed: int = 42,
) -> List[RealOp]:
    """One Psirrfan sweep with the split structure: the irregular
    reconstruction ``A`` runs beside the independent post-processing
    ``B_I``; the dependent remainder ``B_D`` (declared ``deps=("A",)``)
    is dispatched only once ``A`` completes — the mp backend's
    dependency-aware scheduling at work."""
    rng = random.Random(seed)
    active = [c for c in range(columns) if rng.random() < active_fraction]
    inactive = [c for c in range(columns) if c not in set(active)]
    a_payloads = [
        (col, elements + rng.randrange(0, 2 * elements)) for col in active
    ]
    bi_payloads = [(col, post_elements) for col in inactive]
    bd_payloads = [(col, post_elements) for col in active]
    return [
        RealOp(
            name="A",
            kernel=psirrfan_reconstruct_kernel,
            payloads=a_payloads,
            bytes_per_task=8.0 * 64,
            costs=[units_of(p[1]) for p in a_payloads],
        ),
        RealOp(
            name="BI",
            kernel=post_process_kernel,
            payloads=bi_payloads,
            bytes_per_task=8.0 * 32,
            costs=[units_of(post_elements)] * len(bi_payloads),
        ),
        RealOp(
            name="BD",
            kernel=post_process_kernel,
            payloads=bd_payloads,
            bytes_per_task=8.0 * 32,
            costs=[units_of(post_elements)] * len(bd_payloads),
            deps=("A",),
        ),
    ]


def array_ops(
    tasks: int = 48,
    row_elements: int = 65_536,
    seed: int = 0,
) -> List[RealOp]:
    """A payload-heavy data-parallel operation over numpy rows.

    ``tasks`` rows of ``row_elements`` float64 values — integral, seeded,
    deterministic — summed per task.  The natural subject for the shm
    data plane: the payload dwarfs the compute, so pickling it into
    every worker is the dominant cost.  Requires numpy.
    """
    if _np is None:
        raise RuntimeError(
            "the 'array' workload needs numpy; install it or pick a "
            "tuple-payload workload (fig1, reduction, psirrfan)"
        )
    rng = _np.random.default_rng(seed)
    payloads = [
        rng.integers(0, 100, size=row_elements).astype(_np.float64)
        for _ in range(tasks)
    ]
    cost = units_of(row_elements) / 256  # vectorized: ~memory-bound
    return [
        RealOp(
            name="array",
            kernel=array_sum_kernel,
            payloads=payloads,
            bytes_per_task=8.0 * row_elements,
            costs=[cost] * tasks,
        )
    ]


#: Real-kernel workloads runnable on either backend by name
#: (``python -m repro run <name> --backend mp``).
REAL_WORKLOADS = {
    "fig1": fig1_ops,
    "reduction": reduction_ops,
    "psirrfan": psirrfan_ops,
}
if _np is not None:
    REAL_WORKLOADS["array"] = array_ops


def graph_real_ops(
    graph,
    tasks: int = 64,
    elements: int = 400,
    seed: int = 0,
) -> Dict[int, RealOp]:
    """Attach real kernels to a compiled Delirium graph's operators.

    Mirrors the synthetic-cost convention of ``python -m repro trace``:
    masked (``where``-guarded) operators get irregular per-task work,
    everything else regular — but here each task is an actual kernel
    call, so both backends execute/account the identical operation set.
    Pipeline-mirror stages are skipped exactly as in the trace driver.
    """
    rng = random.Random(seed)
    op_map: Dict[int, RealOp] = {}
    for node in graph.nodes:
        if node.pipeline_role is not None:
            continue
        n_tasks = tasks if node.is_parallel else 8
        if node.where is not None:
            payloads = [
                (index, elements * rng.randrange(1, 5))
                for index in range(n_tasks)
            ]
            kernel = column_sum_kernel
        else:
            payloads = [(index, elements) for index in range(n_tasks)]
            kernel = post_process_kernel
        op_map[node.id] = RealOp(
            name=node.name,
            kernel=kernel,
            payloads=payloads,
            costs=[units_of(p[1]) for p in payloads],
        )
    return op_map
