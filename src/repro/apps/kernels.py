"""Real, executable kernels for the multiprocessing backend.

The simulator abstracts a task to a cost; the mp backend needs the task
itself.  This module provides deterministic, pure-Python kernels with the
*shape* of the paper's computations — Figure 1's masked column
reconstruction and post-processing pass, a parallel reduction, and the
Psirrfan tomography sweep — each declared once as a
:class:`repro.Kernel`: the module-level per-task callable (picklable
under every ``multiprocessing`` start method), a vectorized ``batch_fn``
that executes a whole TAPER chunk in one numpy pass (gated on numpy),
and a ``cost_fn`` from which the builders' declared per-task costs are
derived — no more re-threading ``costs=[...]`` through every call site.

Every kernel returns an *integral* float, so value totals are exact
under any summation order: a sim run, an mp run, and a *batched* mp run
of the same workload report identical task and value totals, which the
equivalence suites rely on.  The batch variants reproduce the per-task
integer arithmetic exactly (same moduli, same order) — they are the
same function evaluated ``chunk`` tasks at a time, not an
approximation.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..runtime.kernel import Kernel
from ..runtime.task import RealOp

try:  # numpy is optional: array workloads and batch fns are gated on it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less hosts
    _np = None

#: Inner-loop elements per declared work unit: chosen so a "10 unit"
#: task is a few hundred microseconds of real compute — large enough to
#: dwarf dispatch overhead, small enough for quick smoke runs.
ELEMENTS_PER_UNIT = 50


def units_of(elements: int) -> float:
    """Declared cost (work units) of a kernel with ``elements`` inner steps."""
    return elements / ELEMENTS_PER_UNIT


def pair_elements_cost(payload: Tuple[int, int]) -> float:
    """Declared cost of a ``(id, elements)`` payload: its inner-loop depth."""
    return units_of(payload[1])


# ---------------------------------------------------------------------------
# Kernels (module-level, deterministic, integral-valued)
# ---------------------------------------------------------------------------


def column_sum_kernel(payload: Tuple[int, int]) -> float:
    """Figure 1's reconstruction: ``result(i) = sum_k q(k, i)``.

    ``payload = (col, elements)``; the synthetic matrix entry
    ``q(k, col)`` is the deterministic integer ``(k * 31 + col * 7) % 97``.
    """
    col, elements = payload
    acc = 0
    base = col * 7
    for k in range(elements):
        acc += (k * 31 + base) % 97
    return float(acc % 1_000_003)


def post_process_kernel(payload: Tuple[int, int]) -> float:
    """Figure 1's regular pass: ``output(j, i) = f(q(j, i))``.

    ``payload = (i, elements)``; ``f`` is a cheap integer polynomial.
    """
    i, elements = payload
    acc = 0
    base = i * 13
    for j in range(elements):
        q = (j * 17 + base) % 89
        acc += (q * q + 3 * q + 7) % 101
    return float(acc % 1_000_003)


def range_sum_kernel(payload: Tuple[int, int]) -> float:
    """One reduction leaf: sum a strided slice of the virtual input."""
    start, length = payload
    acc = 0
    for index in range(start, start + length):
        acc += (index * index + 1) % 9973
    return float(acc % 10_000_019)


def array_sum_kernel(payload) -> float:
    """Sum one payload row (a 1-D float64 array of small integers).

    The payload-heavy kernel: per-task compute is one vectorized pass
    over the row, so run time is dominated by how the rows *got to* the
    worker — exactly what the data-plane benchmark measures.  Rows hold
    integral values, so the sum is exact and backend-independent.
    """
    if _np is None:  # pragma: no cover - numpy-less hosts skip this workload
        return float(sum(payload))
    return float(_np.asarray(payload).sum())


def psirrfan_reconstruct_kernel(payload: Tuple[int, int]) -> float:
    """One active tomography column: back-project ``elements`` rays."""
    col, elements = payload
    acc = 0
    angle = col * 29
    for ray in range(elements):
        # Integer stand-in for the projection geometry.
        acc += ((ray * angle + ray * ray) % 193) + 1
    return float(acc % 1_000_033)


# ---------------------------------------------------------------------------
# Batch variants: one vectorized call per TAPER chunk
# ---------------------------------------------------------------------------
#
# Each ``*_batch(payloads, out)`` receives a whole chunk — under the shm
# data plane a zero-copy 2-D int64 view of the payload region, under
# pickle a list of payload tuples — and writes ``out[k] =
# kernel(payloads[k])`` for every row.  ``elements`` varies per task, so
# the inner loop is vectorized per row over one shared ``arange``
# scratch; the per-chunk win is trading ``elements`` interpreted
# iterations per task for one numpy pass.  All arithmetic stays in
# int64: the largest intermediate (reduction's ``index * index``) is
# ~6e11 for the default workloads, far below the 9.2e18 overflow line.


def column_sum_batch(payloads, out) -> None:
    """Vectorized :func:`column_sum_kernel` over a whole chunk."""
    block = _np.asarray(payloads)
    if len(block) == 0:
        return
    k31 = _np.arange(int(block[:, 1].max()), dtype=_np.int64) * 31
    for row in range(len(block)):
        col, elements = int(block[row, 0]), int(block[row, 1])
        acc = int(((k31[:elements] + col * 7) % 97).sum())
        out[row] = float(acc % 1_000_003)


def post_process_batch(payloads, out) -> None:
    """Vectorized :func:`post_process_kernel` over a whole chunk."""
    block = _np.asarray(payloads)
    if len(block) == 0:
        return
    j17 = _np.arange(int(block[:, 1].max()), dtype=_np.int64) * 17
    for row in range(len(block)):
        i, elements = int(block[row, 0]), int(block[row, 1])
        q = (j17[:elements] + i * 13) % 89
        acc = int(((q * q + 3 * q + 7) % 101).sum())
        out[row] = float(acc % 1_000_003)


def range_sum_batch(payloads, out) -> None:
    """Vectorized :func:`range_sum_kernel` over a whole chunk."""
    block = _np.asarray(payloads)
    if len(block) == 0:
        return
    offsets = _np.arange(int(block[:, 1].max()), dtype=_np.int64)
    for row in range(len(block)):
        start, length = int(block[row, 0]), int(block[row, 1])
        index = offsets[:length] + start
        acc = int(((index * index + 1) % 9973).sum())
        out[row] = float(acc % 10_000_019)


def psirrfan_reconstruct_batch(payloads, out) -> None:
    """Vectorized :func:`psirrfan_reconstruct_kernel` over a whole chunk."""
    block = _np.asarray(payloads)
    if len(block) == 0:
        return
    rays = _np.arange(int(block[:, 1].max()), dtype=_np.int64)
    for row in range(len(block)):
        col, elements = int(block[row, 0]), int(block[row, 1])
        angle = col * 29
        ray = rays[:elements]
        acc = int(((ray * angle + ray * ray) % 193).sum()) + elements
        out[row] = float(acc % 1_000_033)


def array_sum_batch(payloads, out) -> None:
    """Vectorized :func:`array_sum_kernel`: one ``sum(axis=1)`` per chunk."""
    out[:] = _np.asarray(payloads).sum(axis=1)


def array_row_cost(payload) -> float:
    """Declared cost of one array row (vectorized: ~memory-bound)."""
    return units_of(len(payload)) / 256


# ---------------------------------------------------------------------------
# Unified kernel declarations
# ---------------------------------------------------------------------------
#
# One :class:`repro.Kernel` per computation: the per-task fn, its batch
# variant (absent on numpy-less hosts — the runtime falls back to
# per-task dispatch), and the cost declaration the builders derive their
# ``RealOp.costs`` from.

COLUMN_SUM = Kernel(
    fn=column_sum_kernel,
    batch_fn=column_sum_batch if _np is not None else None,
    cost_fn=pair_elements_cost,
)

POST_PROCESS = Kernel(
    fn=post_process_kernel,
    batch_fn=post_process_batch if _np is not None else None,
    cost_fn=pair_elements_cost,
)

RANGE_SUM = Kernel(
    fn=range_sum_kernel,
    batch_fn=range_sum_batch if _np is not None else None,
    cost_fn=pair_elements_cost,
)

PSIRRFAN_RECONSTRUCT = Kernel(
    fn=psirrfan_reconstruct_kernel,
    batch_fn=psirrfan_reconstruct_batch if _np is not None else None,
    cost_fn=pair_elements_cost,
)

ARRAY_SUM = Kernel(
    fn=array_sum_kernel,
    batch_fn=array_sum_batch if _np is not None else None,
    cost_fn=array_row_cost,
)


# ---------------------------------------------------------------------------
# Workload builders (RealOps; costs derived from each Kernel's cost_fn)
# ---------------------------------------------------------------------------


def fig1_ops(
    columns: int = 96,
    elements: int = 600,
    active_fraction: float = 0.5,
    seed: int = 0,
) -> List[RealOp]:
    """Figure 1 as two real operations: the irregular masked column loop
    ``A`` beside the regular post-processing pass ``B`` (split's ``B_I``
    portion is what makes them concurrent; here the whole of ``B`` is
    independent for simplicity of the standalone workload)."""
    rng = random.Random(seed)
    active = [c for c in range(columns) if rng.random() < active_fraction]
    # Irregular: each active column reconstructs 1x-3x the base elements.
    a_payloads = [
        (col, elements * rng.randrange(1, 4)) for col in active
    ]
    b_payloads = [(i, elements) for i in range(columns)]
    return [
        RealOp(
            name="A",
            kernel=COLUMN_SUM,
            payloads=a_payloads,
            bytes_per_task=8.0 * 64,
        ),
        RealOp(
            name="B",
            kernel=POST_PROCESS,
            payloads=b_payloads,
            bytes_per_task=8.0 * 32,
        ),
    ]


def reduction_ops(
    leaves: int = 256, length: int = 700, seed: int = 0
) -> List[RealOp]:
    """A flat data-parallel reduction: one regular operation whose tasks
    sum disjoint slices (Figure 4's reduction pattern)."""
    payloads = [(leaf * length, length) for leaf in range(leaves)]
    return [
        RealOp(
            name="reduce",
            kernel=RANGE_SUM,
            payloads=payloads,
            bytes_per_task=8.0 * 16,
        )
    ]


def psirrfan_ops(
    columns: int = 128,
    elements: int = 500,
    active_fraction: float = 0.35,
    post_elements: int = 180,
    seed: int = 42,
) -> List[RealOp]:
    """One Psirrfan sweep with the split structure: the irregular
    reconstruction ``A`` runs beside the independent post-processing
    ``B_I``; the dependent remainder ``B_D`` (declared ``deps=("A",)``)
    is dispatched only once ``A`` completes — the mp backend's
    dependency-aware scheduling at work."""
    rng = random.Random(seed)
    active = [c for c in range(columns) if rng.random() < active_fraction]
    inactive = [c for c in range(columns) if c not in set(active)]
    a_payloads = [
        (col, elements + rng.randrange(0, 2 * elements)) for col in active
    ]
    bi_payloads = [(col, post_elements) for col in inactive]
    bd_payloads = [(col, post_elements) for col in active]
    return [
        RealOp(
            name="A",
            kernel=PSIRRFAN_RECONSTRUCT,
            payloads=a_payloads,
            bytes_per_task=8.0 * 64,
        ),
        RealOp(
            name="BI",
            kernel=POST_PROCESS,
            payloads=bi_payloads,
            bytes_per_task=8.0 * 32,
        ),
        RealOp(
            name="BD",
            kernel=POST_PROCESS,
            payloads=bd_payloads,
            bytes_per_task=8.0 * 32,
            deps=("A",),
        ),
    ]


def array_ops(
    tasks: int = 48,
    row_elements: int = 65_536,
    seed: int = 0,
) -> List[RealOp]:
    """A payload-heavy data-parallel operation over numpy rows.

    ``tasks`` rows of ``row_elements`` float64 values — integral, seeded,
    deterministic — summed per task.  The natural subject for the shm
    data plane: the payload dwarfs the compute, so pickling it into
    every worker is the dominant cost.  Requires numpy.
    """
    if _np is None:
        raise RuntimeError(
            "the 'array' workload needs numpy; install it or pick a "
            "tuple-payload workload (fig1, reduction, psirrfan)"
        )
    rng = _np.random.default_rng(seed)
    payloads = [
        rng.integers(0, 100, size=row_elements).astype(_np.float64)
        for _ in range(tasks)
    ]
    return [
        RealOp(
            name="array",
            kernel=ARRAY_SUM,
            payloads=payloads,
            bytes_per_task=8.0 * row_elements,
        )
    ]


#: Real-kernel workloads runnable on either backend by name
#: (``python -m repro run <name> --backend mp``).
REAL_WORKLOADS = {
    "fig1": fig1_ops,
    "reduction": reduction_ops,
    "psirrfan": psirrfan_ops,
}
if _np is not None:
    REAL_WORKLOADS["array"] = array_ops


def graph_real_ops(
    graph,
    tasks: int = 64,
    elements: int = 400,
    seed: int = 0,
) -> Dict[int, RealOp]:
    """Attach real kernels to a compiled Delirium graph's operators.

    Mirrors the synthetic-cost convention of ``python -m repro trace``:
    masked (``where``-guarded) operators get irregular per-task work,
    everything else regular — but here each task is an actual kernel
    call, so both backends execute/account the identical operation set.
    Pipeline-mirror stages are skipped exactly as in the trace driver.
    """
    rng = random.Random(seed)
    op_map: Dict[int, RealOp] = {}
    for node in graph.nodes:
        if node.pipeline_role is not None:
            continue
        n_tasks = tasks if node.is_parallel else 8
        if node.where is not None:
            payloads = [
                (index, elements * rng.randrange(1, 5))
                for index in range(n_tasks)
            ]
            kernel = COLUMN_SUM
        else:
            payloads = [(index, elements) for index in range(n_tasks)]
            kernel = POST_PROCESS
        op_map[node.id] = RealOp(
            name=node.name,
            kernel=kernel,
            payloads=payloads,
        )
    return op_map
