"""The adaptive vortex method workload (Section 5).

The paper evaluates "an adaptive vortex method for modeling turbulent
fluid flow".  Vortex methods track particles whose interaction costs are
heavy-tailed: clustered vorticity regions produce long interaction lists
while quiescent regions are nearly free.  Per time step:

* **tree build** — construct the spatial hierarchy: modest, semi-serial
  (few coarse tasks),
* **interactions** — evaluate velocities: heavy-tailed irregular costs,
* **advection** — move particles: regular and cheap.

Split exposes that advection of the previous step's already-integrated
particles (and the next step's tree refinement of quiescent regions) is
independent of the irregular interaction evaluation, so ``split`` mode
overlaps the regular work with the heavy tail.
"""

from __future__ import annotations

import random
from typing import List

from ..runtime import ParallelOp
from .workloads import AppWorkload, Phase, power_law_costs, regular_costs


class VortexWorkload(AppWorkload):
    """Adaptive vortex method: heavy-tailed interaction costs."""

    name = "vortex"

    def __init__(
        self,
        particles: int = 4096,
        interaction_scale: float = 10.0,
        interaction_alpha: float = 2.0,
        advect_cost: float = 6.0,
        tree_tasks: int = 128,
        tree_cost: float = 15.0,
        seed: int = 13,
        steps: int = 4,
    ):
        super().__init__(seed=seed, steps=steps)
        self.particles = particles
        self.interaction_scale = interaction_scale
        self.interaction_alpha = interaction_alpha
        self.advect_cost = advect_cost
        self.tree_tasks = tree_tasks
        self.tree_cost = tree_cost

    def phases_for_step(
        self, rng: random.Random, step: int, mode: str
    ) -> List[Phase]:
        tree = ParallelOp(
            name=f"tree{step}",
            costs=regular_costs(self.tree_tasks, self.tree_cost),
            bytes_per_task=8.0 * 64,
        )
        interactions = ParallelOp(
            name=f"force{step}",
            costs=power_law_costs(
                rng,
                self.particles,
                self.interaction_scale,
                self.interaction_alpha,
                cap=5.0 * self.interaction_scale,
            ),
            bytes_per_task=8.0 * 16,
        )
        advect = ParallelOp(
            name=f"advect{step}",
            costs=regular_costs(self.particles, self.advect_cost),
            bytes_per_task=8.0 * 8,
        )
        if mode != "split":
            return [Phase(tree, 0), Phase(interactions, 1), Phase(advect, 2)]
        # Split: the irregular interaction phase overlaps the regular
        # advection of the same step plus the *next* step's tree
        # refinement of quiescent regions (independent of this step's
        # velocities until the merge).
        phases = [Phase(tree, 0)] if step == 0 else []
        group = [Phase(interactions, 1), Phase(advect, 1)]
        if step + 1 < self.steps:
            next_tree = ParallelOp(
                name=f"tree{step + 1}",
                costs=regular_costs(self.tree_tasks, self.tree_cost),
                bytes_per_task=8.0 * 64,
            )
            group.append(Phase(next_tree, 1))
        return phases + group
